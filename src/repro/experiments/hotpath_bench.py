"""Microbenchmarks for the tuner's per-iteration hot path.

Measures the three inner loops that dominate BaCO's overhead between black-box
evaluations (PAPER.md Fig. 2, Table 10 wall-clock):

* **distance_build** — building the per-dimension train-train distance tensor
  for a batch of configurations,
* **gp_fit** — one learning-phase GP fit after appending a single new
  observation (the incremental-tensor case vs. a full recompute),
* **ei_maximization** — scoring a candidate batch with feasibility-weighted
  EI (cross distances, kernel, RF feasibility pass),
* **candidate_generation** — drawing a feasible candidate batch from a
  constrained space (leaf-matrix Chain-of-Trees gathers + batched parameter
  draws + compiled residual constraints vs. the scalar per-configuration
  rejection loop),
* **constraint_eval** — known-constraint feasibility checks for a batch of
  configurations (compiled column evaluators over encoded rows vs. one
  Python ``eval`` per constraint per configuration).

Each section times the **legacy / scalar-reference** path — per-call feature
re-derivation from raw configuration dicts, the per-pair Kendall double loop,
per-row decision tree traversal, per-level tree walks with one weighted
``rng.choice`` per depth, per-config constraint ``eval`` — against the
**vectorized** row path (``ConfigEncoder`` rows + ``DistanceComputer.
pairwise_rows`` + batched RF + ``SearchSpace.sample_rows`` /
``feasible_mask_rows``), and reports throughput plus speedup.  Results are
written as JSON (``BENCH_tuner_hotpath.json``) to seed the performance
trajectory; run it via ``python -m repro bench``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..core.acquisition import AcquisitionFunction
from ..core.feasibility import FeasibilityModel
from ..models.distances import DistanceComputer
from ..models.gp import GaussianProcess
from ..space.constraints import Constraint
from ..space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)
from ..space.space import SearchSpace

__all__ = [
    "DEFAULT_OUTPUT",
    "hotpath_space",
    "constrained_space",
    "run_hotpath_benchmarks",
]

DEFAULT_OUTPUT = Path("BENCH_tuner_hotpath.json")


def hotpath_space(permutation_metric: str = "kendall") -> SearchSpace:
    """A representative mixed-type space for the hot-path benchmarks.

    Shaped like the paper's RISE/TACO spaces: log-warped tile sizes, an
    integer and a real knob, a categorical scheduling choice, and a loop-order
    permutation.  The permutation metric defaults to Kendall because that is
    the semimetric whose legacy implementation was a per-pair Python double
    loop (Spearman/Hamming were already matrix-form).
    """
    return SearchSpace(
        [
            OrdinalParameter("tile_x", [2, 4, 8, 16, 32, 64, 128], transform="log"),
            OrdinalParameter("tile_y", [2, 4, 8, 16, 32, 64, 128], transform="log"),
            IntegerParameter("unroll", 1, 32, transform="log"),
            RealParameter("threshold", 0.01, 10.0, transform="log"),
            CategoricalParameter("sched", ["static", "dynamic", "guided", "auto"]),
            PermutationParameter("loop_order", 6, metric=permutation_metric),
        ],
        build_chain_of_trees=False,
    )


def constrained_space() -> SearchSpace:
    """A RISE-shaped constrained space for the candidate-generation sections.

    Two Chain-of-Trees groups (tile size divisible by work-group size, capped
    products), a residual constraint over a continuous/integer pair that no
    tree can capture, and unconstrained categorical/permutation knobs — the
    same structure the paper's GPU workloads exhibit.
    """
    powers = [1, 2, 4, 8, 16, 32, 64, 128]
    return SearchSpace(
        [
            OrdinalParameter("ts0", powers, transform="log"),
            OrdinalParameter("ls0", powers[:6], transform="log"),
            OrdinalParameter("ts1", powers, transform="log"),
            OrdinalParameter("ls1", powers[:6], transform="log"),
            IntegerParameter("reps", 1, 16),
            RealParameter("eps", 0.01, 1.0, transform="log"),
            CategoricalParameter("sched", ["static", "dynamic", "guided", "auto"]),
            PermutationParameter("loop_order", 5),
        ],
        [
            Constraint("ts0 % ls0 == 0"),
            Constraint("ts0 * ls0 <= 4096"),
            Constraint("ts1 % ls1 == 0"),
            Constraint("ts1 * ls1 <= 4096"),
            Constraint("reps <= 8 or eps >= 0.25"),
        ],
    )


def _sample_configs(space: SearchSpace, n: int, seed: int) -> list[dict[str, Any]]:
    rng = np.random.default_rng(seed)
    return [{p.name: p.sample(rng) for p in space.parameters} for _ in range(n)]


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs (one warm-up)."""
    fn()
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------

def _bench_distance_build(space: SearchSpace, n: int, repeats: int) -> dict[str, Any]:
    configs = _sample_configs(space, n, seed=7)
    computer = DistanceComputer(space.parameters)

    legacy_s = _best_of(lambda: computer.pairwise_reference(configs), repeats)

    def vectorized() -> np.ndarray:
        rows = computer.encoder.encode_batch(configs)
        return computer.pairwise_rows(rows)

    vector_s = _best_of(vectorized, repeats)
    return {
        "n_configs": n,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_configs_per_sec": n / legacy_s,
        "vectorized_configs_per_sec": n / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_gp_fit(space: SearchSpace, n_train: int, repeats: int) -> dict[str, Any]:
    configs = _sample_configs(space, n_train, seed=11)
    values = list(np.random.default_rng(12).uniform(0.5, 5.0, size=n_train))
    computer = DistanceComputer(space.parameters)
    rows = computer.encoder.encode_batch(configs)

    def make_gp() -> GaussianProcess:
        # fixed fitting effort + seed: both paths do identical hyper-parameter
        # work, so the difference isolates the distance/bookkeeping cost
        return GaussianProcess(
            space.parameters,
            n_prior_samples=8,
            n_refined_starts=1,
            max_optimizer_iterations=10,
            rng=np.random.default_rng(13),
            distance_computer=computer,
        )

    def legacy_iteration() -> None:
        # pre-refactor shape of one learning iteration: re-derive the full
        # train-train tensor from the raw dicts, then fit
        tensor = computer.pairwise_reference(configs)
        make_gp().fit_rows(rows, values, distance_tensor=tensor)

    # Steady state of the refactored loop: the tensor buffer over the first
    # n-1 observations is already cached; one iteration appends a single
    # encoded row (one cross block + O(n) buffer writes) and fits.
    tensor_buffer = computer.pairwise_rows(rows)

    def incremental_iteration() -> None:
        cross = computer.pairwise_rows(rows[-1:], rows[:-1])
        tensor_buffer[:, -1:, :-1] = cross
        tensor_buffer[:, :-1, -1:] = np.swapaxes(cross, 1, 2)
        tensor_buffer[:, -1:, -1:] = computer.pairwise_rows(rows[-1:])
        make_gp().fit_rows(rows, values, distance_tensor=tensor_buffer)

    legacy_s = _best_of(legacy_iteration, repeats)
    incremental_s = _best_of(incremental_iteration, repeats)
    return {
        "n_train": n_train,
        "legacy_seconds": legacy_s,
        "incremental_seconds": incremental_s,
        "legacy_fits_per_sec": 1.0 / legacy_s,
        "incremental_fits_per_sec": 1.0 / incremental_s,
        "speedup": legacy_s / incremental_s,
    }


def _bench_ei_maximization(
    space: SearchSpace, n_train: int, n_candidates: int, repeats: int
) -> dict[str, Any]:
    from scipy import stats

    train = _sample_configs(space, n_train, seed=21)
    values = list(np.random.default_rng(22).uniform(0.5, 5.0, size=n_train))
    candidates = _sample_configs(space, n_candidates, seed=23)

    gp = GaussianProcess(
        space.parameters,
        n_prior_samples=8,
        n_refined_starts=1,
        max_optimizer_iterations=10,
        rng=np.random.default_rng(24),
    )
    gp.fit(train, values)

    feasibility = FeasibilityModel(space, n_trees=24, rng=np.random.default_rng(25))
    labels = [bool(b) for b in np.random.default_rng(26).random(n_train) > 0.3]
    feasibility.fit(train, labels)

    acquisition = AcquisitionFunction(
        gp, best_value=min(values), feasibility_model=feasibility, noiseless=True
    )
    best_model_scale = float(gp.to_model_scale(min(values)))
    computer = gp._distance
    hp = gp.hyperparameters
    forest = feasibility._forest

    def legacy() -> np.ndarray:
        # the pre-refactor acquisition data flow: cross distances re-derived
        # per call from the raw dicts (per-pair Kendall loop included), EI on
        # the resulting kernel, and a per-row scalar RF traversal
        cross = computer.pairwise_reference(candidates, train)
        k_star = gp._kernel(cross, hp.lengthscales, hp.outputscale)
        mean = k_star @ gp._alpha
        from scipy import linalg

        v = linalg.solve_triangular(gp._cholesky, k_star.T, lower=True)
        var = np.maximum(hp.outputscale - np.sum(v**2, axis=0), 1e-12)
        std = np.sqrt(np.maximum(var, 1e-18))
        improvement = best_model_scale - mean
        z = improvement / std
        ei = np.maximum(improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z), 0.0)
        feats = space.encode_batch(candidates)
        probability = np.clip(
            np.vstack(
                [[tree._predict_one(row) for row in feats] for tree in forest.trees_]
            ).mean(axis=0),
            0.0,
            1.0,
        )
        return ei * probability

    vector_s = _best_of(lambda: acquisition(candidates), repeats)
    legacy_s = _best_of(legacy, repeats)
    return {
        "n_train": n_train,
        "n_candidates": n_candidates,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_candidates_per_sec": n_candidates / legacy_s,
        "vectorized_candidates_per_sec": n_candidates / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_candidate_generation(
    space: SearchSpace, n: int, repeats: int
) -> dict[str, Any]:
    """Feasible batch draws: scalar rejection loop vs. row-space sampler."""

    def legacy() -> list[dict[str, Any]]:
        return space.sample_reference(np.random.default_rng(31), n)

    def vectorized() -> np.ndarray:
        return space.sample_rows(np.random.default_rng(31), n)

    legacy_s = _best_of(legacy, repeats)
    vector_s = _best_of(vectorized, repeats)
    return {
        "n_candidates": n,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_candidates_per_sec": n / legacy_s,
        "vectorized_candidates_per_sec": n / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_constraint_eval(space: SearchSpace, n: int, repeats: int) -> dict[str, Any]:
    """Known-constraint evaluation: per-config ``eval`` vs. compiled columns.

    Both pipelines are measured on their native inputs, exactly as their
    samplers hold them.  The batch is a feasible draw — configurations a
    sampler *accepts*, each of which the pre-refactor scalar sampler pushed
    through one Python ``eval`` per constraint with a freshly rebuilt
    ``{"__builtins__": {}}`` namespace (replicated verbatim as the legacy
    reference, like ``pairwise_reference`` in the distance section).  The row
    sampler holds the same batch as raw value columns (its leaf gathers and
    batched draws produce columns directly) and applies every compiled
    evaluator once.  ``feasible_mask_rows``'s agreement with ``is_feasible``
    is pinned by tests; this section times the constraint-checking work
    itself.
    """
    from ..space.constraints import _ALLOWED_FUNCTIONS

    configs = space.sample_reference(np.random.default_rng(37), n)
    rows = space.encode_batch(configs)
    constraints = space.constraints
    evaluators = [c.compile_columns() for c in constraints]
    constrained = sorted(set().union(*(c.variables for c in constraints)))
    columns = space.encoder.value_columns(rows, names=constrained)

    def legacy_evaluate(constraint, configuration) -> bool:
        # the seed implementation of Constraint.evaluate, namespace rebuild
        # and all (the live scalar path now reuses a frozen namespace)
        namespace = dict(_ALLOWED_FUNCTIONS)
        for var in constraint.variables:
            namespace[var] = configuration[var]
        return bool(eval(constraint._code, {"__builtins__": {}}, namespace))  # noqa: S307

    def legacy() -> list[bool]:
        return [
            all(legacy_evaluate(c, config) for c in constraints) for config in configs
        ]

    def vectorized() -> np.ndarray:
        mask = np.ones(n, dtype=bool)
        for evaluator in evaluators:
            mask &= evaluator(columns)
        return mask

    verdicts = vectorized()
    assert verdicts.tolist() == legacy(), "compiled constraints diverge from eval()"
    legacy_s = _best_of(legacy, repeats)
    vector_s = _best_of(vectorized, repeats)
    return {
        "n_configs": n,
        "n_constraints": len(constraints),
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_configs_per_sec": n / legacy_s,
        "vectorized_configs_per_sec": n / vector_s,
        "speedup": legacy_s / vector_s,
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_hotpath_benchmarks(
    n_distance_configs: int = 300,
    n_train: int = 80,
    n_candidates: int = 1000,
    n_generated: int = 256,
    repeats: int = 3,
    permutation_metric: str = "kendall",
) -> dict[str, Any]:
    """Run all sections and return the JSON-ready payload."""
    space = hotpath_space(permutation_metric)
    generation_space = constrained_space()
    sections = {
        "distance_build": _bench_distance_build(space, n_distance_configs, repeats),
        "gp_fit": _bench_gp_fit(space, n_train, repeats),
        "ei_maximization": _bench_ei_maximization(space, n_train, n_candidates, repeats),
        "candidate_generation": _bench_candidate_generation(
            generation_space, n_generated, repeats
        ),
        "constraint_eval": _bench_constraint_eval(
            generation_space, n_generated, repeats
        ),
    }
    return {
        "schema": "BENCH_tuner_hotpath/v2",
        "space": {
            "dimension": space.dimension,
            "types": space.parameter_type_codes(),
            "permutation_metric": permutation_metric,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sections": sections,
    }


def write_results(payload: dict[str, Any], path: Path = DEFAULT_OUTPUT) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
