"""Microbenchmarks for the tuner's per-iteration hot path.

Measures the three inner loops that dominate BaCO's overhead between black-box
evaluations (PAPER.md Fig. 2, Table 10 wall-clock):

* **distance_build** — building the per-dimension train-train distance tensor
  for a batch of configurations,
* **gp_fit** — one learning-phase surrogate refit after appending a single
  new observation, across the refit strategies: legacy full recompute, the
  exact-mode multistart fit, a warm-started single L-BFGS refinement, and
  the rank-1 incremental Cholesky extension (frozen hyper-parameters),
* **ei_maximization** — scoring a candidate batch with feasibility-weighted
  EI (cross distances, kernel, RF feasibility pass),
* **candidate_generation** — drawing a feasible candidate batch from a
  constrained space (leaf-matrix Chain-of-Trees gathers + batched parameter
  draws + compiled residual constraints vs. the scalar per-configuration
  rejection loop),
* **constraint_eval** — known-constraint feasibility checks for a batch of
  configurations (compiled column evaluators over encoded rows vs. one
  Python ``eval`` per constraint per configuration),
* **hard_constraint_sampling** — time-to-``n``-feasible on the synthetic
  ``hard_constraint_*`` suite (feasibility densities 1e-2 / 1e-4 / 1e-6):
  plain rejection over the full domains vs. constraint-propagation pruned
  domains (``SearchSpace.with_propagation``).  The headline row reports the
  1e-4 instance — the density the CI gate checks; at 1e-6 rejection exhausts
  its budget and the recorded time is a lower bound (``rejection_failed``),
* **end_to_end** — whole-loop ``BacoTuner.tune`` iterations/sec on a
  constrained space, exact vs fast surrogate policy.

Each section times the **legacy / scalar-reference** path — per-call feature
re-derivation from raw configuration dicts, the per-pair Kendall double loop,
per-row decision tree traversal, per-level tree walks with one weighted
``rng.choice`` per depth, per-config constraint ``eval`` — against the
**vectorized** row path (``ConfigEncoder`` rows + ``DistanceComputer.
pairwise_rows`` + batched RF + ``SearchSpace.sample_rows`` /
``feasible_mask_rows``), and reports throughput plus speedup.  Results are
written as JSON (``BENCH_tuner_hotpath.json``) to seed the performance
trajectory; run it via ``python -m repro bench``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..core.acquisition import AcquisitionFunction
from ..core.feasibility import FeasibilityModel
from ..models.distances import DistanceComputer
from ..models.gp import GaussianProcess
from ..space.constraints import Constraint
from ..space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)
from ..space.space import SearchSpace

__all__ = [
    "ALL_SECTIONS",
    "DEFAULT_OUTPUT",
    "hotpath_space",
    "constrained_space",
    "run_hotpath_benchmarks",
]

DEFAULT_OUTPUT = Path("BENCH_tuner_hotpath.json")


def hotpath_space(permutation_metric: str = "kendall") -> SearchSpace:
    """A representative mixed-type space for the hot-path benchmarks.

    Shaped like the paper's RISE/TACO spaces: log-warped tile sizes, an
    integer and a real knob, a categorical scheduling choice, and a loop-order
    permutation.  The permutation metric defaults to Kendall because that is
    the semimetric whose legacy implementation was a per-pair Python double
    loop (Spearman/Hamming were already matrix-form).
    """
    return SearchSpace(
        [
            OrdinalParameter("tile_x", [2, 4, 8, 16, 32, 64, 128], transform="log"),
            OrdinalParameter("tile_y", [2, 4, 8, 16, 32, 64, 128], transform="log"),
            IntegerParameter("unroll", 1, 32, transform="log"),
            RealParameter("threshold", 0.01, 10.0, transform="log"),
            CategoricalParameter("sched", ["static", "dynamic", "guided", "auto"]),
            PermutationParameter("loop_order", 6, metric=permutation_metric),
        ],
        build_chain_of_trees=False,
    )


def constrained_space() -> SearchSpace:
    """A RISE-shaped constrained space for the candidate-generation sections.

    Two Chain-of-Trees groups (tile size divisible by work-group size, capped
    products), a residual constraint over a continuous/integer pair that no
    tree can capture, and unconstrained categorical/permutation knobs — the
    same structure the paper's GPU workloads exhibit.
    """
    powers = [1, 2, 4, 8, 16, 32, 64, 128]
    return SearchSpace(
        [
            OrdinalParameter("ts0", powers, transform="log"),
            OrdinalParameter("ls0", powers[:6], transform="log"),
            OrdinalParameter("ts1", powers, transform="log"),
            OrdinalParameter("ls1", powers[:6], transform="log"),
            IntegerParameter("reps", 1, 16),
            RealParameter("eps", 0.01, 1.0, transform="log"),
            CategoricalParameter("sched", ["static", "dynamic", "guided", "auto"]),
            PermutationParameter("loop_order", 5),
        ],
        [
            Constraint("ts0 % ls0 == 0"),
            Constraint("ts0 * ls0 <= 4096"),
            Constraint("ts1 % ls1 == 0"),
            Constraint("ts1 * ls1 <= 4096"),
            Constraint("reps <= 8 or eps >= 0.25"),
        ],
    )


def _sample_configs(space: SearchSpace, n: int, seed: int) -> list[dict[str, Any]]:
    rng = np.random.default_rng(seed)
    return [{p.name: p.sample(rng) for p in space.parameters} for _ in range(n)]


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs (one warm-up)."""
    fn()
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------

def _bench_distance_build(space: SearchSpace, n: int, repeats: int) -> dict[str, Any]:
    configs = _sample_configs(space, n, seed=7)
    computer = DistanceComputer(space.parameters)

    legacy_s = _best_of(lambda: computer.pairwise_reference(configs), repeats)

    def vectorized() -> np.ndarray:
        rows = computer.encoder.encode_batch(configs)
        return computer.pairwise_rows(rows)

    vector_s = _best_of(vectorized, repeats)
    return {
        "n_configs": n,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_configs_per_sec": n / legacy_s,
        "vectorized_configs_per_sec": n / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_gp_fit(space: SearchSpace, n_train: int, repeats: int) -> dict[str, Any]:
    """One learning-iteration surrogate refit, across the refit strategies.

    Four variants of "a new observation arrived, update the GP":

    * **legacy** — pre-refactor shape: re-derive the full train-train tensor
      from the raw dicts, then run the full multistart MAP fit;
    * **exact** — the current exact-mode iteration: one cross-block update of
      the cached tensor buffer, then the full multistart MAP fit (this is
      what the default ``SurrogatePolicy("exact")`` pays per iteration);
    * **warm_started** — tensor update + a single L-BFGS-B refinement seeded
      from the previous optimum (``hyper_strategy="warm"``);
    * **incremental** — tensor update + rank-1 Cholesky extension + alpha
      recompute with frozen hyper-parameters (the fast policy's steady
      state — no hyper search, no factorization).

    The headline ``speedup`` is exact vs incremental: the per-iteration cost
    the fast surrogate policy removes.
    """
    configs = _sample_configs(space, n_train, seed=11)
    values = list(np.random.default_rng(12).uniform(0.5, 5.0, size=n_train))
    computer = DistanceComputer(space.parameters)
    rows = computer.encoder.encode_batch(configs)

    def make_gp() -> GaussianProcess:
        # fixed fitting effort + seed: the full-fit paths do identical
        # hyper-parameter work, so differences isolate the refit strategy
        return GaussianProcess(
            space.parameters,
            n_prior_samples=8,
            n_refined_starts=1,
            max_optimizer_iterations=10,
            rng=np.random.default_rng(13),
            distance_computer=computer,
        )

    def legacy_iteration() -> None:
        tensor = computer.pairwise_reference(configs)
        make_gp().fit_rows(rows, values, distance_tensor=tensor)

    # Steady state of the refactored loop: the tensor buffer over the first
    # n-1 observations is already cached; one iteration appends a single
    # encoded row (one cross block + O(n) buffer writes) before refitting.
    tensor_buffer = computer.pairwise_rows(rows)

    def update_tensor() -> None:
        cross = computer.pairwise_rows(rows[-1:], rows[:-1])
        tensor_buffer[:, -1:, :-1] = cross
        tensor_buffer[:, :-1, -1:] = np.swapaxes(cross, 1, 2)
        tensor_buffer[:, -1:, -1:] = computer.pairwise_rows(rows[-1:])

    def exact_iteration() -> None:
        update_tensor()
        make_gp().fit_rows(rows, values, distance_tensor=tensor_buffer)

    # a converged previous optimum to seed the warm refit from
    seed_gp = make_gp()
    seed_gp.fit_rows(rows[:-1], values[:-1], distance_tensor=tensor_buffer[:, :-1, :-1])
    warm_vector = seed_gp.hyperparameters.to_vector()

    warm_gp = make_gp()
    warm_gp.hyperparameters = seed_gp.hyperparameters

    def warm_iteration() -> None:
        update_tensor()
        warm_gp.fit_rows(
            rows, values, distance_tensor=tensor_buffer,
            hyper_strategy="warm", warm_start=warm_vector,
        )

    # frozen-hyper steady state: the factor over the first n-1 rows is
    # cached; each iteration extends it by one row and recomputes alpha
    frozen_gp = make_gp()
    frozen_gp.fit_rows(
        rows[:-1], values[:-1], distance_tensor=tensor_buffer[:, :-1, :-1]
    )
    base_cholesky = frozen_gp._cholesky

    def incremental_iteration() -> None:
        update_tensor()
        # rewind to the pre-extension factor so every repeat measures the
        # same one-row extension (references only — O(1), not timed work)
        frozen_gp._cholesky = base_cholesky
        frozen_gp._chol_n = n_train - 1
        frozen_gp.extend_cholesky(rows, tensor_buffer)
        frozen_gp.refit_targets(values)

    legacy_s = _best_of(legacy_iteration, repeats)
    exact_s = _best_of(exact_iteration, repeats)
    warm_s = _best_of(warm_iteration, repeats)
    incremental_s = _best_of(incremental_iteration, repeats)
    return {
        "n_train": n_train,
        "legacy_seconds": legacy_s,
        "exact_seconds": exact_s,
        "warm_started_seconds": warm_s,
        "incremental_seconds": incremental_s,
        "exact_fits_per_sec": 1.0 / exact_s,
        "warm_started_fits_per_sec": 1.0 / warm_s,
        "incremental_fits_per_sec": 1.0 / incremental_s,
        "legacy_speedup": legacy_s / exact_s,
        "warm_started_speedup": exact_s / warm_s,
        "speedup": exact_s / incremental_s,
    }


#: the pooled fast-family policy the end-to-end section benchmarks: sparse
#: hyper refits plus the persistent candidate pool with the cross-distance
#: cache — the full acquisition hot path
POOLED_BENCH_POLICY = "fast,refit_every=32,sweep_every=64,pool=512"


def _bench_end_to_end(budget: int, repeats: int) -> dict[str, Any]:
    """Whole-loop tuner throughput: exact vs fast vs pooled surrogate policy.

    Runs :meth:`BacoTuner.tune` on the constrained space against a synthetic
    objective (always feasible, deterministic) and reports learning-loop
    iterations per second.  This is the number the surrogate policy actually
    moves — every hot-path stage combined, including the acquisition
    maximization the refit sections exclude.

    The GP fitting effort deliberately stays at the paper defaults: the exact
    baseline *is* BaCO's per-iteration full multistart MAP refit, and scaling
    it down would understate exactly the cost the fast policies remove.  Each
    policy's per-phase wall-clock (sample / fit / predict / ei / climb, from
    the tuner's :class:`~repro.core.profiling.PhaseProfiler`) is reported
    alongside the totals, taken from the fastest repeat.
    """
    from ..core.baco import BacoSettings, BacoTuner
    from ..core.result import ObjectiveResult

    space = constrained_space()

    def objective(config: dict[str, Any]) -> ObjectiveResult:
        value = (
            abs(np.log2(config["ts0"]) - 5.0)
            + abs(np.log2(config["ts1"]) - 3.0)
            + 0.1 * config["reps"]
            + config["eps"]
            + (0.5 if config["sched"] == "auto" else 0.0)
            + 0.05 * sum(i * v for i, v in enumerate(config["loop_order"]))
        )
        return ObjectiveResult(value=float(1.0 + value))

    def settings(policy: str) -> BacoSettings:
        # acquisition-optimizer effort trimmed identically for every policy;
        # GP fitting effort kept at the paper defaults (see docstring)
        return BacoSettings(
            n_random_samples=128,
            n_local_search_starts=3,
            max_local_search_steps=16,
            feasibility_trees=16,
            surrogate_policy=policy,
        )

    def run(policy: str) -> tuple[float, dict[str, Any]]:
        best = np.inf
        phases: dict[str, Any] = {}
        for _ in range(repeats):
            tuner = BacoTuner(space, settings=settings(policy), seed=41)
            start = time.perf_counter()
            tuner.tune(objective, budget)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
                phases = tuner.phase_profiler.summary()
        return float(best), phases

    exact_s, exact_phases = run("exact")
    fast_s, fast_phases = run("fast,refit_every=8,sweep_every=40")
    pooled_s, pooled_phases = run(POOLED_BENCH_POLICY)
    return {
        "budget": budget,
        "exact_seconds": exact_s,
        "fast_seconds": fast_s,
        "pooled_seconds": pooled_s,
        "exact_iters_per_sec": budget / exact_s,
        "fast_iters_per_sec": budget / fast_s,
        "pooled_iters_per_sec": budget / pooled_s,
        "speedup": exact_s / fast_s,
        "pooled_speedup": exact_s / pooled_s,
        "pooled_policy": POOLED_BENCH_POLICY,
        "phases": {
            "exact": exact_phases,
            "fast": fast_phases,
            "pooled": pooled_phases,
        },
    }


def _bench_ei_maximization(
    space: SearchSpace, n_train: int, n_candidates: int, repeats: int
) -> dict[str, Any]:
    from scipy import stats

    train = _sample_configs(space, n_train, seed=21)
    values = list(np.random.default_rng(22).uniform(0.5, 5.0, size=n_train))
    candidates = _sample_configs(space, n_candidates, seed=23)

    gp = GaussianProcess(
        space.parameters,
        n_prior_samples=8,
        n_refined_starts=1,
        max_optimizer_iterations=10,
        rng=np.random.default_rng(24),
    )
    gp.fit(train, values)

    feasibility = FeasibilityModel(space, n_trees=24, rng=np.random.default_rng(25))
    labels = [bool(b) for b in np.random.default_rng(26).random(n_train) > 0.3]
    feasibility.fit(train, labels)

    acquisition = AcquisitionFunction(
        gp, best_value=min(values), feasibility_model=feasibility, noiseless=True
    )
    best_model_scale = float(gp.to_model_scale(min(values)))
    computer = gp._distance
    hp = gp.hyperparameters
    forest = feasibility._forest

    def legacy() -> np.ndarray:
        # the pre-refactor acquisition data flow: cross distances re-derived
        # per call from the raw dicts (per-pair Kendall loop included), EI on
        # the resulting kernel, and a per-row scalar RF traversal
        cross = computer.pairwise_reference(candidates, train)
        k_star = gp._kernel(cross, hp.lengthscales, hp.outputscale)
        mean = k_star @ gp._alpha
        from scipy import linalg

        v = linalg.solve_triangular(gp._cholesky, k_star.T, lower=True)
        var = np.maximum(hp.outputscale - np.sum(v**2, axis=0), 1e-12)
        std = np.sqrt(np.maximum(var, 1e-18))
        improvement = best_model_scale - mean
        z = improvement / std
        ei = np.maximum(improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z), 0.0)
        feats = space.encode_batch(candidates)
        probability = np.clip(
            np.vstack(
                [[tree._predict_one(row) for row in feats] for tree in forest.trees_]
            ).mean(axis=0),
            0.0,
            1.0,
        )
        return ei * probability

    vector_s = _best_of(lambda: acquisition(candidates), repeats)
    legacy_s = _best_of(legacy, repeats)
    return {
        "n_train": n_train,
        "n_candidates": n_candidates,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_candidates_per_sec": n_candidates / legacy_s,
        "vectorized_candidates_per_sec": n_candidates / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_candidate_generation(
    space: SearchSpace, n: int, repeats: int
) -> dict[str, Any]:
    """Feasible batch draws: scalar rejection loop vs. row-space sampler."""

    def legacy() -> list[dict[str, Any]]:
        return space.sample_reference(np.random.default_rng(31), n)

    def vectorized() -> np.ndarray:
        return space.sample_rows(np.random.default_rng(31), n)

    legacy_s = _best_of(legacy, repeats)
    vector_s = _best_of(vectorized, repeats)
    return {
        "n_candidates": n,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_candidates_per_sec": n / legacy_s,
        "vectorized_candidates_per_sec": n / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_constraint_eval(space: SearchSpace, n: int, repeats: int) -> dict[str, Any]:
    """Known-constraint evaluation: per-config ``eval`` vs. compiled columns.

    Both pipelines are measured on their native inputs, exactly as their
    samplers hold them.  The batch is a feasible draw — configurations a
    sampler *accepts*, each of which the pre-refactor scalar sampler pushed
    through one Python ``eval`` per constraint with a freshly rebuilt
    ``{"__builtins__": {}}`` namespace (replicated verbatim as the legacy
    reference, like ``pairwise_reference`` in the distance section).  The row
    sampler holds the same batch as raw value columns (its leaf gathers and
    batched draws produce columns directly) and applies every compiled
    evaluator once.  ``feasible_mask_rows``'s agreement with ``is_feasible``
    is pinned by tests; this section times the constraint-checking work
    itself.
    """
    from ..space.constraints import _ALLOWED_FUNCTIONS

    configs = space.sample_reference(np.random.default_rng(37), n)
    rows = space.encode_batch(configs)
    constraints = space.constraints
    evaluators = [c.compile_columns() for c in constraints]
    constrained = sorted(set().union(*(c.variables for c in constraints)))
    columns = space.encoder.value_columns(rows, names=constrained)

    def legacy_evaluate(constraint, configuration) -> bool:
        # the seed implementation of Constraint.evaluate, namespace rebuild
        # and all (the live scalar path now reuses a frozen namespace)
        namespace = dict(_ALLOWED_FUNCTIONS)
        for var in constraint.variables:
            namespace[var] = configuration[var]
        return bool(eval(constraint._code, {"__builtins__": {}}, namespace))  # noqa: S307

    def legacy() -> list[bool]:
        return [
            all(legacy_evaluate(c, config) for c in constraints) for config in configs
        ]

    def vectorized() -> np.ndarray:
        mask = np.ones(n, dtype=bool)
        for evaluator in evaluators:
            mask &= evaluator(columns)
        return mask

    verdicts = vectorized()
    assert verdicts.tolist() == legacy(), "compiled constraints diverge from eval()"
    legacy_s = _best_of(legacy, repeats)
    vector_s = _best_of(vectorized, repeats)
    return {
        "n_configs": n,
        "n_constraints": len(constraints),
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vector_s,
        "legacy_configs_per_sec": n / legacy_s,
        "vectorized_configs_per_sec": n / vector_s,
        "speedup": legacy_s / vector_s,
    }


def _bench_hard_constraint_sampling(n: int, repeats: int) -> dict[str, Any]:
    """Time-to-``n``-feasible on the hard-constraint suite: reject vs propagate.

    Both paths run the same ``sample_rows`` rejection loop over the same
    residual constraints; the propagation path merely draws from the
    arc-consistent pruned domains first (``SearchSpace.with_propagation``),
    so any timing difference is the acceptance-rate gap.  The rejection
    budget is raised well past the default so the 1e-4 instance is timed
    honestly (its expected cost is ~1e4 draws per accepted sample) rather
    than dying mid-measurement; the 1e-6 instance is *expected* to exhaust
    its (reduced) budget — its wall-clock is recorded as a lower bound with
    ``rejection_failed: true`` and the reported speedup is therefore also a
    lower bound.

    The headline keys (``legacy_seconds`` / ``vectorized_seconds`` /
    ``speedup``) mirror the 1e-4 instance, the density the CI bench gate
    asserts on.
    """
    from ..workloads.hard_constraint_suite import (
        HARD_CONSTRAINT_DENSITIES,
        build_hard_constraint_space,
    )

    gated_density = "1e-4"
    densities: dict[str, Any] = {}
    for density in HARD_CONSTRAINT_DENSITIES:
        space = build_hard_constraint_space(density)
        propagating = space.with_propagation()

        prop_s = _best_of(
            lambda: propagating.sample_rows(np.random.default_rng(43), n), repeats
        )
        stats = propagating.last_sample_stats or {}

        # 1e-6 would need ~1e6 draws per accepted sample; cap its budget so
        # the (certain) failure is cheap and honestly labelled a lower bound
        budget_rounds = 2_000 if density == "1e-6" else 200_000

        def rejection() -> np.ndarray:
            return space.sample_rows(
                np.random.default_rng(43), n, max_rejection_rounds=budget_rounds
            )

        # a single timed run: the cost is dominated by millions of batched
        # draws (seconds of work at 1e-4), so repeat noise is negligible and
        # best-of-k would triple the bench wall-clock for nothing
        start = time.perf_counter()
        try:
            rejection()
            rejection_failed = False
        except RuntimeError:
            rejection_failed = True
        rejection_s = float(time.perf_counter() - start)

        densities[density] = {
            "n_candidates": n,
            "rejection_seconds": rejection_s,
            "rejection_failed": rejection_failed,
            "rejection_rounds_budget": budget_rounds,
            "propagation_seconds": prop_s,
            "propagation_candidates_per_sec": n / prop_s,
            "propagation_acceptance_rate": stats.get("acceptance_rate"),
            "propagation_rounds": stats.get("rounds"),
            "speedup": rejection_s / prop_s,
        }

    gated = densities[gated_density]
    return {
        "n_candidates": n,
        "gated_density": gated_density,
        "densities": densities,
        "legacy_seconds": gated["rejection_seconds"],
        "vectorized_seconds": gated["propagation_seconds"],
        "vectorized_candidates_per_sec": gated["propagation_candidates_per_sec"],
        "speedup": gated["speedup"],
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

#: every benchmark section, in report order
ALL_SECTIONS = (
    "distance_build",
    "gp_fit",
    "ei_maximization",
    "candidate_generation",
    "constraint_eval",
    "hard_constraint_sampling",
    "end_to_end",
)


def run_hotpath_benchmarks(
    n_distance_configs: int = 300,
    n_train: int = 80,
    n_candidates: int = 1000,
    n_generated: int = 256,
    repeats: int = 3,
    permutation_metric: str = "kendall",
    end_to_end_budget: int = 40,
    sections: "tuple[str, ...] | list[str] | None" = None,
) -> dict[str, Any]:
    """Run the requested sections (all by default), return the JSON payload.

    ``sections`` filters to a subset of :data:`ALL_SECTIONS` — used by
    ``repro bench --section`` for quick single-section runs.  A filtered
    payload is not a complete baseline; the CLI only writes the committed
    JSON for full runs.
    """
    if sections is None:
        selected = ALL_SECTIONS
    else:
        unknown = sorted(set(sections) - set(ALL_SECTIONS))
        if unknown:
            raise ValueError(
                f"unknown bench section(s) {unknown}; available: {list(ALL_SECTIONS)}"
            )
        selected = tuple(name for name in ALL_SECTIONS if name in set(sections))
    space = hotpath_space(permutation_metric)
    generation_space = constrained_space()
    runners: dict[str, Callable[[], dict[str, Any]]] = {
        "distance_build": lambda: _bench_distance_build(space, n_distance_configs, repeats),
        "gp_fit": lambda: _bench_gp_fit(space, n_train, repeats),
        "ei_maximization": lambda: _bench_ei_maximization(
            space, n_train, n_candidates, repeats
        ),
        "candidate_generation": lambda: _bench_candidate_generation(
            generation_space, n_generated, repeats
        ),
        "constraint_eval": lambda: _bench_constraint_eval(
            generation_space, n_generated, repeats
        ),
        "hard_constraint_sampling": lambda: _bench_hard_constraint_sampling(
            n_generated, max(1, repeats - 1)
        ),
        "end_to_end": lambda: _bench_end_to_end(end_to_end_budget, max(1, repeats - 1)),
    }
    results = {name: runners[name]() for name in selected}
    return {
        "schema": "BENCH_tuner_hotpath/v5",
        "space": {
            "dimension": space.dimension,
            "types": space.parameter_type_codes(),
            "permutation_metric": permutation_metric,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sections": results,
    }


def write_results(payload: dict[str, Any], path: Path = DEFAULT_OUTPUT) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
