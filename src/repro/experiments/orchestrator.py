"""Parallel experiment orchestration over the (benchmark, tuner, budget, seed) grid.

Every data point in the paper's evaluation is one *cell*: a single tuner run
on a single benchmark with a fixed budget and seed.  Cells are completely
independent, so the whole cross product can be executed in parallel.  This
module provides the engine that does so:

* :func:`enumerate_cells` materializes the full grid up front,
* :func:`run_cells` executes a list of cells — serially in-process when
  ``workers == 1`` (the historical behavior of :mod:`repro.experiments.runner`),
  or on a :class:`~concurrent.futures.ProcessPoolExecutor` otherwise — with
  per-cell timeout and retry, skipping cells whose tuning history already
  exists in the on-disk JSON cache,
* a *checkpoint manifest* (``sweep_manifest.json`` next to the cache files)
  records the status of every cell so an interrupted sweep resumes where it
  left off and ``python -m repro status`` can summarize progress,
* per-cell :class:`CellEvent` notifications stream to an ``on_event`` hook
  (rendered by :func:`repro.experiments.reporting.format_cell_event`).

Determinism: a cell's seed is part of its identity, and parallel workers run
the exact same :func:`repro.experiments.runner.run_single` code path as the
serial engine, so a parallel sweep writes bit-identical history JSON to a
serial one.

Parallel workers re-resolve benchmarks by *name* through
:func:`repro.workloads.registry.get_benchmark`; ad-hoc :class:`Benchmark`
objects that are not registry-resolvable can only be executed with
``workers == 1`` (they are passed through in-process).

Cell-level parallelism composes with *within-cell* parallel evaluation:
with ``config.eval_workers > 1`` each cell drives its tuner through an
ask/tell :class:`repro.core.session.TuningSession`, fanning ``ask(q)``
batches out over a nested process pool (see
:func:`repro.experiments.runner.run_single`).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import warnings
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.result import TuningHistory
from ..workloads.base import Benchmark
from ..workloads.registry import get_benchmark
from .config import ExperimentConfig, default_config
from .runner import TUNER_VARIANTS, _cache_path, _registry_resolvable, run_single

__all__ = [
    "Cell",
    "CellEvent",
    "CellOutcome",
    "CellTimeoutError",
    "SweepResult",
    "cell_cache_path",
    "enumerate_cells",
    "load_manifest",
    "manifest_path",
    "run_cells",
    "sweep",
]

MANIFEST_NAME = "sweep_manifest.json"


class CellTimeoutError(RuntimeError):
    """Raised inside a worker when a cell exceeds its wall-clock timeout."""


# ---------------------------------------------------------------------------
# the cell grid
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One experiment grid point: a tuner run on a benchmark at (budget, seed)."""

    benchmark: str
    tuner: str
    budget: int
    seed: int

    @property
    def key(self) -> str:
        return f"{self.benchmark}|{self.tuner}|b{self.budget}|s{self.seed}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.benchmark} · {self.tuner} · budget={self.budget} seed={self.seed}"


@dataclass(frozen=True)
class CellEvent:
    """Progress notification emitted once per cell state change."""

    kind: str  #: "start" | "cached" | "done" | "retry" | "failed"
    cell: Cell
    index: int  #: 1-based position in the sweep
    total: int
    elapsed: float = 0.0
    attempt: int = 1
    error: str = ""


@dataclass
class CellOutcome:
    """Terminal state of one cell after a sweep."""

    cell: Cell
    status: str  #: "done" | "cached" | "failed"
    attempts: int = 1
    elapsed: float = 0.0
    error: str = ""


def enumerate_cells(
    benchmarks: Iterable[Benchmark | str],
    tuners: Sequence[str],
    config: ExperimentConfig | None = None,
    budget: int | None = None,
    seeds: Sequence[int] | None = None,
) -> list[Cell]:
    """Materialize the (benchmark, tuner, seed) grid as a list of cells.

    ``budget`` overrides the per-benchmark scaled Table 3 budget; ``seeds``
    overrides the ``config.base_seed + repetition`` convention.  Cell order is
    benchmark-major then tuner then seed, matching the historical serial loop.
    """
    config = config or default_config()
    seed_list = (
        list(seeds)
        if seeds is not None
        else [config.base_seed + rep for rep in range(config.repetitions)]
    )
    for tuner in tuners:
        if tuner not in TUNER_VARIANTS:
            raise KeyError(f"unknown tuner {tuner!r}; available: {sorted(TUNER_VARIANTS)}")
    cells: list[Cell] = []
    for entry in benchmarks:
        bench = get_benchmark(entry) if isinstance(entry, str) else entry
        cell_budget = budget if budget is not None else config.scaled_budget(bench.full_budget)
        for tuner in tuners:
            for seed in seed_list:
                cells.append(Cell(bench.name, tuner, int(cell_budget), int(seed)))
    return cells


def cell_cache_path(config: ExperimentConfig, cell: Cell) -> Path:
    """Where :func:`repro.experiments.runner.run_single` caches this cell."""
    return _cache_path(config, cell.benchmark, cell.tuner, cell.budget, cell.seed)


# ---------------------------------------------------------------------------
# checkpoint manifest
# ---------------------------------------------------------------------------

def manifest_path(config: ExperimentConfig) -> Path:
    return config.cache_dir / MANIFEST_NAME


def load_manifest(config: ExperimentConfig) -> dict[str, Any]:
    """Load the sweep manifest, returning an empty shell when absent/corrupt."""
    path = manifest_path(config)
    if path.exists():
        try:
            payload = json.loads(path.read_text())
            if isinstance(payload, dict) and isinstance(payload.get("cells"), dict):
                return payload
        except (json.JSONDecodeError, OSError):
            pass
    return {"version": 1, "updated_at": 0.0, "cells": {}}


def _write_manifest(config: ExperimentConfig, manifest: Mapping[str, Any]) -> None:
    path = manifest_path(config)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
    os.replace(tmp, path)


def _record(manifest: dict[str, Any], config: ExperimentConfig, outcome: CellOutcome) -> None:
    cell = outcome.cell
    manifest["cells"][cell.key] = {
        "benchmark": cell.benchmark,
        "tuner": cell.tuner,
        "budget": cell.budget,
        "seed": cell.seed,
        "fidelity": config.fidelity,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "elapsed": round(outcome.elapsed, 3),
        "error": outcome.error,
        "file": cell_cache_path(config, cell).name,
    }
    manifest["updated_at"] = time.time()


# ---------------------------------------------------------------------------
# cell execution (shared by the serial path and the worker processes)
# ---------------------------------------------------------------------------

@contextmanager
def _alarm(seconds: float | None):
    """Raise :class:`CellTimeoutError` after ``seconds`` of wall-clock time.

    Uses ``SIGALRM``, so it only arms on platforms that have it and when
    running on the main thread (worker-process tasks always do).
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - exercised via timeout tests
        raise CellTimeoutError(f"cell exceeded the {seconds:.1f}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_cell(
    cell: Cell,
    config: ExperimentConfig,
    timeout: float | None = None,
    benchmark: Benchmark | None = None,
) -> TuningHistory:
    """Execute one cell (used in-process and as the process-pool task)."""
    with _alarm(timeout):
        return run_single(
            benchmark if benchmark is not None else cell.benchmark,
            cell.tuner,
            cell.budget,
            cell.seed,
            config,
        )


def _run_cell_timed(
    cell: Cell, config: ExperimentConfig, timeout: float | None
) -> tuple[float, TuningHistory]:
    """Process-pool task: cell runtime measured inside the worker, so the
    reported elapsed time excludes queue wait."""
    started = time.time()
    history = _run_cell(cell, config, timeout)
    return time.time() - started, history


def _init_worker(parent_sys_path: list[str]) -> None:
    """Make ``repro`` importable in spawned workers even without PYTHONPATH."""
    for entry in parent_sys_path:
        if entry not in sys.path:
            sys.path.append(entry)


# ---------------------------------------------------------------------------
# the sweep engine
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Outcome of :func:`run_cells`: per-cell statuses plus loaded histories."""

    config: ExperimentConfig
    outcomes: dict[Cell, CellOutcome]
    manifest_file: Path | None
    elapsed: float
    _histories: dict[Cell, TuningHistory] = field(default_factory=dict, repr=False)
    _benchmarks: dict[str, Benchmark] = field(default_factory=dict, repr=False)

    @property
    def counts(self) -> Counter:
        return Counter(outcome.status for outcome in self.outcomes.values())

    @property
    def failures(self) -> list[CellOutcome]:
        return [o for o in self.outcomes.values() if o.status == "failed"]

    def history(self, cell: Cell) -> TuningHistory:
        """The tuning history of a cell (loading from the cache if needed)."""
        if cell not in self._histories:
            bench = self._benchmarks.get(cell.benchmark, cell.benchmark)
            self._histories[cell] = run_single(
                bench, cell.tuner, cell.budget, cell.seed, self.config
            )
        return self._histories[cell]


def run_cells(
    cells: Sequence[Cell],
    config: ExperimentConfig | None = None,
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    resume: bool | None = None,
    benchmarks: Mapping[str, Benchmark] | None = None,
    on_event: Callable[[CellEvent], None] | None = None,
    raise_on_error: bool = False,
) -> SweepResult:
    """Execute a list of cells, in parallel when ``workers > 1``.

    Keyword arguments default to the corresponding :class:`ExperimentConfig`
    fields.  Cells whose cached history already exists are skipped (status
    ``"cached"``) unless ``resume`` is false, in which case their cache entry
    is removed and they are recomputed.  Each remaining cell gets
    ``1 + retries`` attempts bounded by ``timeout`` seconds apiece.  With
    ``raise_on_error`` the first unrecoverable cell failure is re-raised after
    the sweep finishes (the behavior :func:`repro.experiments.runner.run_benchmark`
    relies on); otherwise failures are reported in the returned
    :class:`SweepResult`.
    """
    config = config or default_config()
    workers = config.workers if workers is None else max(1, workers)
    timeout = config.timeout if timeout is None else timeout
    retries = config.retries if retries is None else max(0, retries)
    resume = config.resume if resume is None else resume
    benchmark_objects = dict(benchmarks or {})

    # de-duplicate while preserving order; a cell is one unit of work
    ordered: dict[Cell, None] = dict.fromkeys(cells)
    total = len(ordered)
    started = time.time()
    outcomes: dict[Cell, CellOutcome] = {}
    histories: dict[Cell, TuningHistory] = {}
    errors: dict[Cell, BaseException] = {}

    manifest = load_manifest(config) if config.use_cache else {"version": 1, "cells": {}}
    if not resume:
        # forget only the cells being re-run; records from other sweeps stay
        for cell in ordered:
            manifest["cells"].pop(cell.key, None)

    def emit(kind: str, cell: Cell, index: int, **kwargs: Any) -> None:
        if on_event is not None:
            on_event(CellEvent(kind=kind, cell=cell, index=index, total=total, **kwargs))

    # -- partition into cached / pending -----------------------------------
    pending: list[tuple[int, Cell]] = []
    for index, cell in enumerate(ordered, start=1):
        path = cell_cache_path(config, cell)
        if config.use_cache and resume and path.exists():
            outcomes[cell] = CellOutcome(cell, "cached")
            emit("cached", cell, index)
        else:
            if config.use_cache and not resume:
                path.unlink(missing_ok=True)
            pending.append((index, cell))

    def finish(cell: Cell, outcome: CellOutcome) -> None:
        outcomes[cell] = outcome
        if config.use_cache:
            _record(manifest, config, outcome)
            _write_manifest(config, manifest)

    if timeout and not hasattr(signal, "SIGALRM"):
        warnings.warn(
            "per-cell timeout requested but SIGALRM is unavailable on this "
            "platform; cells will run unbounded",
            RuntimeWarning,
            stacklevel=2,
        )

    # cells backed by ad-hoc Benchmark objects that worker processes cannot
    # re-resolve by name must run in-process
    serial_pending = pending
    parallel_pending: list[tuple[int, Cell]] = []
    if workers > 1 and pending:
        serial_pending, parallel_pending = [], []
        for index, cell in pending:
            needs_object = (
                cell.benchmark in benchmark_objects
                and not _registry_resolvable(cell.benchmark)
            )
            (serial_pending if needs_object else parallel_pending).append((index, cell))

    # -- serial path (workers == 1, plus any registry-unresolvable cells) ----
    for index, cell in serial_pending:
        emit("start", cell, index)
        outcome = _run_serial_cell(
            cell, config, timeout, retries, benchmark_objects, histories, errors,
            emit_retry=lambda attempt, err, c=cell, i=index: emit(
                "retry", c, i, attempt=attempt, error=err
            ),
        )
        finish(cell, outcome)
        emit(outcome.status, cell, index, elapsed=outcome.elapsed,
             attempt=outcome.attempts, error=outcome.error)
    if parallel_pending:
        _run_parallel_cells(
            parallel_pending, config, workers, timeout, retries, histories, errors,
            emit, finish,
        )

    if config.use_cache:
        for cell, outcome in outcomes.items():
            if outcome.status == "cached" and cell.key not in manifest["cells"]:
                _record(manifest, config, outcome)
        _write_manifest(config, manifest)

    if raise_on_error and errors:
        raise next(iter(errors.values()))

    return SweepResult(
        config=config,
        outcomes=outcomes,
        manifest_file=manifest_path(config) if config.use_cache else None,
        elapsed=time.time() - started,
        _histories=histories,
        _benchmarks=benchmark_objects,
    )


def _run_serial_cell(
    cell: Cell,
    config: ExperimentConfig,
    timeout: float | None,
    retries: int,
    benchmark_objects: Mapping[str, Benchmark],
    histories: dict[Cell, TuningHistory],
    errors: dict[Cell, BaseException],
    emit_retry: Callable[[int, str], None],
) -> CellOutcome:
    cell_started = time.time()
    benchmark = benchmark_objects.get(cell.benchmark)
    for attempt in range(1, retries + 2):
        try:
            histories[cell] = _run_cell(cell, config, timeout, benchmark)
            return CellOutcome(cell, "done", attempt, time.time() - cell_started)
        except Exception as exc:  # noqa: BLE001 - cell isolation is the point
            if attempt <= retries:
                emit_retry(attempt, f"{type(exc).__name__}: {exc}")
                continue
            errors[cell] = exc
            return CellOutcome(
                cell, "failed", attempt, time.time() - cell_started,
                error=f"{type(exc).__name__}: {exc}",
            )
    raise AssertionError("unreachable")


def _run_parallel_cells(
    pending: Sequence[tuple[int, Cell]],
    config: ExperimentConfig,
    workers: int,
    timeout: float | None,
    retries: int,
    histories: dict[Cell, TuningHistory],
    errors: dict[Cell, BaseException],
    emit: Callable[..., None],
    finish: Callable[[Cell, CellOutcome], None],
) -> None:
    """Fan pending cells out over a process pool with retry.

    ``fork`` (where available) inherits ``sys.path`` and skips re-importing
    the parent's ``__main__``; on spawn-only platforms the initializer
    replays the parent's ``sys.path`` so ``repro`` stays importable.
    """
    context = get_context("fork" if "fork" in get_all_start_methods() else "spawn")
    starts: dict[Cell, float] = {}
    attempts: dict[Cell, int] = {}
    indices: dict[Cell, int] = {index_cell[1]: index_cell[0] for index_cell in pending}
    with ProcessPoolExecutor(
        max_workers=min(workers, len(pending)),
        mp_context=context,
        initializer=_init_worker,
        initargs=(list(sys.path),),
    ) as pool:

        def submit(cell: Cell) -> Future:
            attempts[cell] = attempts.get(cell, 0) + 1
            starts[cell] = time.time()
            emit("start" if attempts[cell] == 1 else "retry", cell, indices[cell],
                 attempt=attempts[cell])
            return pool.submit(_run_cell_timed, cell, config, timeout)

        def fail(cell: Cell, exc: BaseException) -> None:
            errors[cell] = exc
            outcome = CellOutcome(
                cell, "failed", attempts[cell], time.time() - starts[cell],
                error=f"{type(exc).__name__}: {exc}",
            )
            finish(cell, outcome)
            emit("failed", cell, indices[cell], elapsed=outcome.elapsed,
                 attempt=outcome.attempts, error=outcome.error)

        running: dict[Future, Cell] = {submit(cell): cell for _, cell in pending}
        while running:
            done, _ = wait(list(running), return_when=FIRST_COMPLETED)
            for future in done:
                cell = running.pop(future)
                try:
                    elapsed, histories[cell] = future.result()
                except Exception as exc:  # noqa: BLE001 - per-cell isolation
                    broken = "BrokenProcessPool" in type(exc).__name__
                    if attempts[cell] <= retries and not broken:
                        try:
                            running[submit(cell)] = cell
                        except Exception as submit_exc:  # noqa: BLE001 - pool may be broken
                            fail(cell, submit_exc)
                        continue
                    fail(cell, exc)
                    continue
                outcome = CellOutcome(cell, "done", attempts[cell], elapsed)
                finish(cell, outcome)
                emit("done", cell, indices[cell], elapsed=outcome.elapsed,
                     attempt=outcome.attempts, error=outcome.error)


def sweep(
    benchmarks: Iterable[Benchmark | str],
    tuners: Sequence[str],
    config: ExperimentConfig | None = None,
    budget: int | None = None,
    seeds: Sequence[int] | None = None,
    **run_kwargs: Any,
) -> SweepResult:
    """Enumerate the grid and execute it: ``run_cells(enumerate_cells(...))``."""
    config = config or default_config()
    cells = enumerate_cells(benchmarks, tuners, config, budget=budget, seeds=seeds)
    return run_cells(cells, config, **run_kwargs)
