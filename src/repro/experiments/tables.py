"""Row data for every table of the paper's evaluation section and appendix.

* Table 3  — benchmark / search-space statistics,
* Table 5  — number of repetitions reaching expert-level performance,
* Tables 6/7/8 — performance relative to the expert at tiny / small / full budget,
* Table 9  — how much faster BaCO reaches the other tuners' final performance,
* Table 10 — wall-clock time of the autotuners themselves.

Each function returns ``(headers, rows)`` ready for
:func:`repro.experiments.reporting.format_table`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..core.result import TuningHistory
from ..workloads.registry import benchmark_names, get_benchmark
from .config import ExperimentConfig, default_config
from .figures import suite_benchmarks
from .metrics import (
    expert_hits,
    geometric_mean,
    reference_value,
    relative_performance,
    speedup_factor,
)
from .runner import MAIN_TUNERS, run_benchmark

__all__ = [
    "table3_rows",
    "table5_rows",
    "relative_performance_rows",
    "table9_rows",
    "table10_rows",
]

Rows = tuple[list[str], list[list]]


def table3_rows(names: Sequence[str] | None = None) -> Rows:
    """Table 3: benchmark, dimension, parameter types, constraints, space sizes, budget."""
    names = list(names) if names is not None else benchmark_names()
    headers = ["Benchmark", "Dim", "Params", "Constr.", "Space size", "Feasible", "Full budget"]
    rows = []
    for name in names:
        info = get_benchmark(name).describe()
        rows.append(
            [
                name,
                info["dimension"],
                info["types"],
                info["constraints"] or "-",
                f"{info['dense_size']:.1e}",
                f"{info['feasible_size']:.1e}",
                info["full_budget"],
            ]
        )
    return headers, rows


def _suite_results(
    config: ExperimentConfig,
    tuners: Sequence[str],
) -> dict[str, dict[str, list[TuningHistory]]]:
    names = [name for group in suite_benchmarks(config).values() for name in group]
    return {
        name: run_benchmark(name, tuners, config=config) for name in names
    }


def table5_rows(
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
    results: Mapping[str, Mapping[str, Sequence[TuningHistory]]] | None = None,
) -> Rows:
    """Table 5: out of N repetitions, how many reached expert-level performance."""
    config = config or default_config()
    results = results or _suite_results(config, tuners)
    headers = ["Benchmark", *tuners, "out of"]
    rows = []
    totals = {tuner: 0 for tuner in tuners}
    for name, per_tuner in results.items():
        benchmark = get_benchmark(name)
        reference = reference_value(benchmark, per_tuner)
        row = [name]
        for tuner in tuners:
            hits = expert_hits(benchmark, per_tuner[tuner], reference=reference)
            totals[tuner] += hits
            row.append(hits)
        row.append(len(next(iter(per_tuner.values()))))
        rows.append(row)
    rows.append(["TOTAL", *[totals[t] for t in tuners], ""])
    return headers, rows


def relative_performance_rows(
    level: str,
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
    results: Mapping[str, Mapping[str, Sequence[TuningHistory]]] | None = None,
) -> Rows:
    """Tables 6/7/8: per-benchmark performance relative to the expert.

    ``level`` selects the budget: "tiny" (Table 6), "small" (Table 7) or
    "full" (Table 8); values above 1.0 beat the expert configuration.
    """
    fractions = {"tiny": 1 / 3, "small": 2 / 3, "full": 1.0}
    if level not in fractions:
        raise KeyError(f"level must be one of {sorted(fractions)}")
    config = config or default_config()
    results = results or _suite_results(config, tuners)
    headers = ["Benchmark", *tuners]
    rows = []
    per_framework: dict[str, dict[str, list[float]]] = {}
    for name, per_tuner in results.items():
        benchmark = get_benchmark(name)
        budget = config.scaled_budget(benchmark.full_budget)
        level_budget = max(1, int(round(budget * fractions[level])))
        reference = reference_value(benchmark, per_tuner)
        row = [name]
        for tuner in tuners:
            value = relative_performance(
                benchmark, per_tuner[tuner], level_budget, reference=reference
            )
            row.append(round(value, 2) if math.isfinite(value) else float("nan"))
            per_framework.setdefault(benchmark.framework, {}).setdefault(tuner, []).append(value)
        rows.append(row)
    for framework, tuner_values in per_framework.items():
        rows.append(
            [
                f"-- {framework} (mean)",
                *[
                    round(float(np.nanmean(tuner_values[tuner])), 2)
                    if tuner_values.get(tuner)
                    else float("nan")
                    for tuner in tuners
                ],
            ]
        )
    all_values = {
        tuner: [v for fw in per_framework.values() for v in fw.get(tuner, [])] for tuner in tuners
    }
    rows.append(
        ["== All (mean)", *[round(float(np.nanmean(all_values[t])), 2) for t in tuners]]
    )
    return headers, rows


def table9_rows(
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
    results: Mapping[str, Mapping[str, Sequence[TuningHistory]]] | None = None,
) -> Rows:
    """Table 9: how much faster BaCO reaches each baseline's final best value."""
    config = config or default_config()
    results = results or _suite_results(config, tuners)
    baselines = [t for t in tuners if t != "BaCO"]
    headers = ["Benchmark", *baselines]
    rows = []
    collected: dict[str, list[float]] = {b: [] for b in baselines}
    for name, per_tuner in results.items():
        benchmark = get_benchmark(name)
        budget = config.scaled_budget(benchmark.full_budget)
        row = [name]
        for baseline in baselines:
            factor = speedup_factor(per_tuner["BaCO"], per_tuner[baseline], budget)
            if math.isfinite(factor):
                collected[baseline].append(factor)
                row.append(f"{factor:.2f}x")
            else:
                row.append("-")
        rows.append(row)
    rows.append(
        [
            "== geometric mean",
            *[
                f"{geometric_mean(collected[b]):.2f}x" if collected[b] else "-"
                for b in baselines
            ],
        ]
    )
    return headers, rows


def table10_rows(
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
    kernels: Sequence[str] = ("taco_spmm_scircuit", "taco_sddmm_email-Enron"),
) -> Rows:
    """Table 10: average autotuner wall-clock seconds on the SpMM / SDDMM kernels.

    The paper reports total wall-clock time including kernel execution; with a
    simulated toolchain the black-box time is negligible, so the meaningful
    comparison is the tuner-internal time, reported per run.
    """
    config = config or default_config()
    headers = ["Kernel", *tuners]
    rows = []
    for name in kernels:
        benchmark = get_benchmark(name)
        results = run_benchmark(benchmark, tuners, config=config)
        row = [name]
        for tuner in tuners:
            seconds = [h.tuner_seconds + h.evaluation_seconds for h in results[tuner]]
            row.append(round(float(np.mean(seconds)), 2))
        rows.append(row)
    return headers, rows
