"""Experiment harness: runners, metrics, and paper figure / table reproduction."""

from .config import ExperimentConfig, default_config
from .figures import (
    SPMM_ABLATION_TENSORS,
    figure5_data,
    figure6_data,
    figure7_data,
    figure8_data,
    figure9_data,
    figure10_data,
    suite_benchmarks,
)
from .metrics import (
    evaluations_to_reach,
    expert_hits,
    geometric_mean,
    mean_best_curve,
    mean_best_value,
    reference_value,
    relative_performance,
    speedup_factor,
)
from .reporting import format_checkpoint_study, format_evolution, format_figure5, format_table
from .runner import MAIN_TUNERS, TUNER_VARIANTS, make_tuner, run_benchmark, run_single, run_suite
from .tables import (
    relative_performance_rows,
    table3_rows,
    table5_rows,
    table9_rows,
    table10_rows,
)

__all__ = [
    "ExperimentConfig",
    "MAIN_TUNERS",
    "SPMM_ABLATION_TENSORS",
    "TUNER_VARIANTS",
    "default_config",
    "evaluations_to_reach",
    "expert_hits",
    "figure10_data",
    "figure5_data",
    "figure6_data",
    "figure7_data",
    "figure8_data",
    "figure9_data",
    "format_checkpoint_study",
    "format_evolution",
    "format_figure5",
    "format_table",
    "geometric_mean",
    "make_tuner",
    "mean_best_curve",
    "mean_best_value",
    "reference_value",
    "relative_performance",
    "relative_performance_rows",
    "run_benchmark",
    "run_single",
    "run_suite",
    "speedup_factor",
    "suite_benchmarks",
    "table10_rows",
    "table3_rows",
    "table5_rows",
    "table9_rows",
]
