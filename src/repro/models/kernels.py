"""Covariance kernels over mixed-type autotuning spaces.

BaCO uses a Matérn-5/2 kernel (Eq. 1 of the paper) over a weighted Euclidean
combination of per-parameter distances (Eq. 2):

.. math::

    k(x, x') = \\sigma \\left(1 + \\sqrt{5} d + \\tfrac{5}{3} d^2\\right)
               e^{-\\sqrt{5} d},
    \\qquad
    d = \\sqrt{\\sum_i d(x_i, x'_i)^2 / l_i^2}

where the per-dimension distances come from
:class:`repro.models.distances.DistanceComputer` and the lengthscales
``l_i`` are learned by MAP estimation.  An RBF kernel is provided for
completeness / ablations.
"""
# repro: hot-path — row-space module: per-row Python loops, .tolist(), and in-loop decode are flagged (see repro.analysis)

from __future__ import annotations

import numpy as np

__all__ = ["matern52", "rbf", "scaled_distance", "KERNELS"]


def scaled_distance(distance_tensor: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Combine per-dimension distances into the weighted Euclidean norm of Eq. (2).

    ``distance_tensor`` has shape ``(D, n, m)`` (pairwise matrices) or
    ``(D, n)`` (a single cross column, e.g. one new observation against the
    training set during a rank-1 Cholesky extension); ``lengthscales`` has
    shape ``(D,)``.  The leading dimension is always the parameter axis.
    """
    distance_tensor = np.asarray(distance_tensor, dtype=float)
    lengthscales = np.asarray(lengthscales, dtype=float)
    lengthscales = lengthscales.reshape(-1, *([1] * (distance_tensor.ndim - 1)))
    if distance_tensor.shape[0] != lengthscales.shape[0]:
        raise ValueError(
            f"distance tensor has {distance_tensor.shape[0]} dimensions but "
            f"{lengthscales.shape[0]} lengthscales were given"
        )
    scaled = distance_tensor / lengthscales
    return np.sqrt(np.sum(scaled**2, axis=0))


def matern52(
    distance_tensor: np.ndarray, lengthscales: np.ndarray, outputscale: float = 1.0
) -> np.ndarray:
    """Matérn-5/2 kernel matrix (or cross vector) from a distance tensor."""
    d = scaled_distance(distance_tensor, lengthscales)
    sqrt5_d = np.sqrt(5.0) * d
    return outputscale * (1.0 + sqrt5_d + (5.0 / 3.0) * d**2) * np.exp(-sqrt5_d)


def rbf(
    distance_tensor: np.ndarray, lengthscales: np.ndarray, outputscale: float = 1.0
) -> np.ndarray:
    """Squared-exponential kernel (ablation alternative)."""
    d = scaled_distance(distance_tensor, lengthscales)
    return outputscale * np.exp(-0.5 * d**2)


KERNELS = {"matern52": matern52, "rbf": rbf}
