"""Prior distributions for GP hyper-parameters.

BaCO uses gamma priors on the kernel lengthscales (Sec. 3.2) to stop the MLE
from collapsing some lengthscales towards zero (which would make the GP
behave like a sparse model over discrete inputs) or inflating them to
infinity.  Log-normal priors are provided as the alternative the paper
mentions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["GammaPrior", "LogNormalPrior", "UniformPrior"]


@dataclass(frozen=True)
class GammaPrior:
    """Gamma(shape, rate) prior with positive support and long tails."""

    shape: float = 2.0
    rate: float = 2.0

    def log_pdf(self, value: float | np.ndarray) -> float | np.ndarray:
        value = np.asarray(value, dtype=float)
        with np.errstate(divide="ignore"):
            lp = stats.gamma.logpdf(value, a=self.shape, scale=1.0 / self.rate)
        return lp if lp.shape else float(lp)

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] = 1) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    @property
    def mean(self) -> float:
        return self.shape / self.rate


@dataclass(frozen=True)
class LogNormalPrior:
    """Log-normal prior, an alternative with similar qualitative shape."""

    mu: float = 0.0
    sigma: float = 1.0

    def log_pdf(self, value: float | np.ndarray) -> float | np.ndarray:
        value = np.asarray(value, dtype=float)
        lp = stats.lognorm.logpdf(value, s=self.sigma, scale=math.exp(self.mu))
        return lp if lp.shape else float(lp)

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] = 1) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=size)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)


@dataclass(frozen=True)
class UniformPrior:
    """Flat prior on ``[low, high]`` -- effectively "no prior" for MAP fitting."""

    low: float = 1e-3
    high: float = 1e3

    def log_pdf(self, value: float | np.ndarray) -> float | np.ndarray:
        value = np.asarray(value, dtype=float)
        inside = (value >= self.low) & (value <= self.high)
        lp = np.where(inside, -math.log(self.high - self.low), -np.inf)
        return lp if lp.shape else float(lp)

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] = 1) -> np.ndarray:
        return np.exp(rng.uniform(math.log(self.low), math.log(self.high), size=size))

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0
