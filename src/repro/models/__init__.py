"""Probabilistic models (GP, random forests) built from scratch on numpy/scipy."""

from .distances import DistanceComputer, parameter_scale
from .gp import GaussianProcess, GPHyperparameters
from .kernels import KERNELS, matern52, rbf, scaled_distance
from .priors import GammaPrior, LogNormalPrior, UniformPrior
from .random_forest import DecisionTree, RandomForestClassifier, RandomForestRegressor

__all__ = [
    "DecisionTree",
    "DistanceComputer",
    "GammaPrior",
    "GaussianProcess",
    "GPHyperparameters",
    "KERNELS",
    "LogNormalPrior",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "UniformPrior",
    "matern52",
    "parameter_scale",
    "rbf",
    "scaled_distance",
]
