"""Gaussian-process surrogate model over mixed autotuning spaces.

This is a from-scratch GP built on numpy + scipy that implements the
customizations described in Sec. 3.2 of the BaCO paper:

* Matérn-5/2 kernel over a weighted combination of per-parameter distances
  (absolute / log difference, Hamming, permutation semimetrics);
* Gamma priors on the lengthscales, giving a MAP (rather than MLE) fit that
  prevents lengthscale collapse on discrete spaces;
* multistart hyper-parameter optimization: a batch of prior samples is
  scored, the best few are refined with L-BFGS-B;
* Gaussian observation noise, with prediction optionally excluding the noise
  term (used by the "noiseless EI" acquisition of Sec. 3.3);
* output standardization and optional log transformation of the objective.

The GP operates on **pre-encoded** configuration rows
(:class:`repro.space.encoding.ConfigEncoder`): :meth:`GaussianProcess.fit_rows`
/ :meth:`GaussianProcess.predict_rows` consume ``(n, width)`` float matrices
directly, and ``fit_rows`` accepts an externally cached train-train distance
tensor (see :class:`repro.models.distances.IncrementalDistanceTensor`) so the
per-iteration fit never recomputes the full pairwise structure.  The
dict-based :meth:`fit` / :meth:`predict` remain as thin adapters that encode
and delegate.  The train tensor is computed once per fit and shared across
all hyper-parameter restarts — only the (cheap) kernel evaluation depends on
the hyper-parameters.

Incremental refit
-----------------

Refitting from scratch every iteration is the last hot-path bottleneck: a
full fit is an O(n³) Cholesky factorization *per hyper-parameter objective
evaluation*, dozens of times per multistart MAP search.  Three cheaper refit
paths support the tuner's fast surrogate policy
(:class:`repro.core.baco.SurrogatePolicy`):

* :meth:`fit_rows` with ``hyper_strategy="warm"`` skips the prior sweep and
  runs a single L-BFGS refinement seeded from the previous optimum
  (``warm_start``); with ``hyper_strategy="sweep"`` a ``warm_start`` vector
  joins the multistart pool so the full search never regresses below the
  previous optimum.  ``"frozen"`` keeps the current hyper-parameters and
  only refactorizes.
* :meth:`extend_cholesky` grows the cached factor ``L`` by one row per new
  observation — an O(n²) triangular solve instead of an O(n³)
  refactorization — valid exactly when the hyper-parameters are unchanged.
* :meth:`refit_targets` re-standardizes the targets and recomputes ``alpha``
  against the (possibly extended) cached factor, completing an incremental
  "fit" without touching the kernel matrix at all.

:attr:`n_train_factorizations` counts full train-matrix factorizations so
tests can pin "one factorization per fit, zero per diagnostic call".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np
from scipy import linalg, optimize

from ..space.parameters import Parameter
from .distances import DistanceComputer
from .kernels import KERNELS
from .priors import GammaPrior

__all__ = ["GaussianProcess", "GPHyperparameters"]

_JITTER = 1e-8
_MIN_STD = 1e-12


@dataclass
class GPHyperparameters:
    """Kernel hyper-parameters: per-dimension lengthscales, outputscale, noise."""

    lengthscales: np.ndarray
    outputscale: float
    noise_variance: float

    def to_vector(self) -> np.ndarray:
        return np.log(
            np.concatenate([self.lengthscales, [self.outputscale, self.noise_variance]])
        )

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "GPHyperparameters":
        values = np.exp(np.asarray(vector, dtype=float))
        return cls(
            lengthscales=values[:-2],
            outputscale=float(values[-2]),
            noise_variance=float(values[-1]),
        )


class GaussianProcess:
    """GP regressor over configuration dictionaries.

    Parameters
    ----------
    parameters:
        The search-space parameters; they define the per-dimension distances.
    kernel:
        ``"matern52"`` (default, Eq. 1 of the paper) or ``"rbf"``.
    lengthscale_prior:
        Gamma prior applied to every lengthscale; ``None`` disables the prior
        (the "no model priors" ablation of Fig. 9).
    log_transform_output:
        Model ``log(y)`` instead of ``y`` -- appropriate for runtimes, which
        span orders of magnitude.  Disabled in the BaCO-- ablation.
    standardize_output:
        Standardize the (possibly log-transformed) targets before fitting.
    n_prior_samples / n_refined_starts / max_optimizer_iterations:
        Controls for the multistart MAP hyper-parameter search.
    advanced_fit:
        When ``False``, skip the L-BFGS refinement and use a single median
        hyper-parameter setting -- the "less advanced GP fitting" used by the
        BaCO-- variant of Fig. 8.
    distance_computer:
        Optional shared :class:`DistanceComputer`; pass one to reuse its
        encoder (and scales) across GP instances, e.g. when the tuner
        re-creates the surrogate every iteration against one incremental
        distance cache.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        kernel: str = "matern52",
        lengthscale_prior: GammaPrior | None = GammaPrior(shape=2.0, rate=2.0),
        noise_prior: GammaPrior | None = GammaPrior(shape=1.1, rate=20.0),
        outputscale_prior: GammaPrior | None = GammaPrior(shape=2.0, rate=1.0),
        log_transform_output: bool = True,
        standardize_output: bool = True,
        n_prior_samples: int = 16,
        n_refined_starts: int = 2,
        max_optimizer_iterations: int = 25,
        advanced_fit: bool = True,
        rng: np.random.Generator | None = None,
        distance_computer: DistanceComputer | None = None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; choose from {sorted(KERNELS)}")
        self.parameters = list(parameters)
        self.kernel_name = kernel
        self._kernel = KERNELS[kernel]
        self.lengthscale_prior = lengthscale_prior
        self.noise_prior = noise_prior
        self.outputscale_prior = outputscale_prior
        self.log_transform_output = log_transform_output
        self.standardize_output = standardize_output
        self.n_prior_samples = n_prior_samples
        self.n_refined_starts = n_refined_starts
        self.max_optimizer_iterations = max_optimizer_iterations
        self.advanced_fit = advanced_fit
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._distance = (
            distance_computer
            if distance_computer is not None
            else DistanceComputer(self.parameters)
        )
        self.encoder = self._distance.encoder

        self.hyperparameters: GPHyperparameters | None = None
        self._train_rows: np.ndarray | None = None
        self._train_distance: np.ndarray | None = None
        self._cholesky: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        #: rows covered by the cached factor ``L`` (== len of _cholesky)
        self._chol_n = 0
        #: rows covered by the last *full* factorization; rows beyond this
        #: were appended by rank-1 extension.  The tuner snapshots this so a
        #: restore can replay the exact same factorize-then-extend sequence.
        self._chol_base_n = 0
        #: full train-matrix factorizations performed so far (diagnostics;
        #: hyper-parameter search factorizations are not counted)
        self.n_train_factorizations = 0

    # ------------------------------------------------------------------
    # target transforms
    # ------------------------------------------------------------------
    def _transform_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if self.log_transform_output:
            if np.any(y <= 0):
                raise ValueError("log transform of the objective requires positive values")
            y = np.log(y)
        self._y_mean = float(np.mean(y)) if self.standardize_output else 0.0
        self._y_std = float(np.std(y)) if self.standardize_output else 1.0
        if self._y_std < _MIN_STD:
            self._y_std = 1.0
        return (y - self._y_mean) / self._y_std

    def to_model_scale(self, y: float | np.ndarray) -> np.ndarray:
        """Map raw objective values to the (log, standardized) model scale."""
        y = np.asarray(y, dtype=float)
        if self.log_transform_output:
            y = np.log(y)
        return (y - self._y_mean) / self._y_std

    def from_model_scale(self, y: float | np.ndarray) -> np.ndarray:
        """Map model-scale values back to the raw objective scale."""
        y = np.asarray(y, dtype=float) * self._y_std + self._y_mean
        if self.log_transform_output:
            y = np.exp(y)
        return y

    # ------------------------------------------------------------------
    # marginal likelihood
    # ------------------------------------------------------------------
    def _kernel_matrix(
        self, distance: np.ndarray, hp: GPHyperparameters, noise: bool
    ) -> np.ndarray:
        k = self._kernel(distance, hp.lengthscales, hp.outputscale)
        if noise:
            n = k.shape[0]
            k = k + (hp.noise_variance + _JITTER) * np.eye(n)
        return k

    def _negative_log_posterior(self, vector: np.ndarray, y: np.ndarray) -> float:
        hp = GPHyperparameters.from_vector(vector)
        k = self._kernel_matrix(self._train_distance, hp, noise=True)
        try:
            chol = linalg.cholesky(k, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((chol, True), y)
        n = len(y)
        nll = 0.5 * float(y @ alpha)
        nll += float(np.sum(np.log(np.diag(chol))))
        nll += 0.5 * n * math.log(2.0 * math.pi)
        if self.lengthscale_prior is not None:
            nll -= float(np.sum(self.lengthscale_prior.log_pdf(hp.lengthscales)))
        if self.noise_prior is not None:
            nll -= float(np.sum(self.noise_prior.log_pdf(hp.noise_variance)))
        if self.outputscale_prior is not None:
            nll -= float(np.sum(self.outputscale_prior.log_pdf(hp.outputscale)))
        if not np.isfinite(nll):
            return 1e25
        return nll

    def _log_prior(self, hp: GPHyperparameters) -> float:
        """Summed log prior density of ``hp`` (0.0 when priors are disabled)."""
        lp = 0.0
        if self.lengthscale_prior is not None:
            lp += float(np.sum(self.lengthscale_prior.log_pdf(hp.lengthscales)))
        if self.noise_prior is not None:
            lp += float(np.sum(self.noise_prior.log_pdf(hp.noise_variance)))
        if self.outputscale_prior is not None:
            lp += float(np.sum(self.outputscale_prior.log_pdf(hp.outputscale)))
        return lp

    def _hyper_bounds(self) -> list[tuple[float, float]]:
        d = self._distance.n_dimensions
        bounds = [(math.log(1e-3), math.log(1e3))] * d
        bounds += [(math.log(1e-3), math.log(1e3))]  # outputscale
        bounds += [(math.log(1e-8), math.log(1.0))]  # noise variance
        return bounds

    def _sample_hyperparameters(self) -> GPHyperparameters:
        d = self._distance.n_dimensions
        ls_prior = self.lengthscale_prior or GammaPrior(2.0, 2.0)
        lengthscales = np.clip(ls_prior.sample(self._rng, size=d), 1e-3, 1e3)
        out_prior = self.outputscale_prior or GammaPrior(2.0, 1.0)
        noise_prior = self.noise_prior or GammaPrior(1.1, 20.0)
        outputscale = float(np.clip(out_prior.sample(self._rng, size=1)[0], 1e-3, 1e3))
        noise = float(np.clip(noise_prior.sample(self._rng, size=1)[0], 1e-6, 1.0))
        return GPHyperparameters(lengthscales, outputscale, noise)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, configurations: Sequence[Mapping[str, Any]], targets: Sequence[float]) -> None:
        """Fit the GP to observed (configuration, objective) pairs.

        Thin adapter over :meth:`fit_rows`: encodes the dicts once, then
        fits on the rows.
        """
        self.fit_rows(self.encoder.encode_batch(configurations), targets)

    def fit_rows(
        self,
        rows: np.ndarray,
        targets: Sequence[float],
        distance_tensor: np.ndarray | None = None,
        hyper_strategy: str = "sweep",
        warm_start: np.ndarray | None = None,
    ) -> None:
        """Fit the GP on pre-encoded configuration rows.

        ``distance_tensor`` — when the caller maintains the train-train
        distance tensor incrementally (one cross block per new observation),
        passing it here skips the full pairwise recomputation.  It must be
        the ``(D, n, n)`` tensor of ``rows``.

        ``hyper_strategy`` selects how the kernel hyper-parameters are found:

        * ``"sweep"`` (default) — the full multistart MAP search: score
          ``n_prior_samples`` prior draws, refine the best few with L-BFGS-B.
          A ``warm_start`` log-vector, when given, joins the candidate pool so
          the search never regresses below the previous optimum.  With
          ``warm_start=None`` this path is byte-identical to the historical
          behavior (same RNG consumption, same arithmetic).
        * ``"warm"`` — skip the prior sweep; run a single L-BFGS-B refinement
          seeded from ``warm_start`` (or the current hyper-parameters).
          Consumes no RNG.
        * ``"frozen"`` — keep the current hyper-parameters, only refactorize.
          Used to rebuild the factor deterministically on snapshot restore.
        """
        if hyper_strategy not in ("sweep", "warm", "frozen"):
            raise ValueError(
                f"unknown hyper_strategy {hyper_strategy!r}; "
                "choose from 'sweep', 'warm', 'frozen'"
            )
        rows = np.asarray(rows, dtype=float)
        if len(rows) != len(targets):
            raise ValueError("configurations and targets must have the same length")
        if len(rows) < 2:
            raise ValueError("need at least two observations to fit a GP")
        self._train_rows = rows
        y = self._transform_targets(np.asarray(targets, dtype=float))
        if distance_tensor is not None:
            expected = (self._distance.n_dimensions, len(rows), len(rows))
            if distance_tensor.shape != expected:
                raise ValueError(
                    f"distance tensor has shape {distance_tensor.shape}, expected {expected}"
                )
            self._train_distance = distance_tensor
        else:
            self._train_distance = self._distance.pairwise_rows(rows)

        if hyper_strategy == "frozen":
            if self.hyperparameters is None:
                raise RuntimeError("hyper_strategy='frozen' requires a previous fit")
        elif hyper_strategy == "warm":
            if warm_start is None:
                if self.hyperparameters is None:
                    raise RuntimeError(
                        "hyper_strategy='warm' requires warm_start or a previous fit"
                    )
                warm_start = self.hyperparameters.to_vector()
            start = np.asarray(warm_start, dtype=float)
            best_value, best_vector = self._negative_log_posterior(start, y), start
            if self.advanced_fit:
                result = optimize.minimize(
                    self._negative_log_posterior,
                    start,
                    args=(y,),
                    method="L-BFGS-B",
                    bounds=self._hyper_bounds(),
                    options={"maxiter": self.max_optimizer_iterations},
                )
                if result.fun < best_value:
                    best_value, best_vector = float(result.fun), result.x
            self.hyperparameters = GPHyperparameters.from_vector(best_vector)
        else:
            candidates: list[tuple[float, np.ndarray]] = []
            for _ in range(self.n_prior_samples):
                hp = self._sample_hyperparameters()
                vec = hp.to_vector()
                candidates.append((self._negative_log_posterior(vec, y), vec))
            if warm_start is not None:
                vec = np.asarray(warm_start, dtype=float)
                candidates.append((self._negative_log_posterior(vec, y), vec))
            candidates.sort(key=lambda item: item[0])

            if self.advanced_fit:
                best_value, best_vector = candidates[0]
                for _, start in candidates[: self.n_refined_starts]:
                    result = optimize.minimize(
                        self._negative_log_posterior,
                        start,
                        args=(y,),
                        method="L-BFGS-B",
                        bounds=self._hyper_bounds(),
                        options={"maxiter": self.max_optimizer_iterations},
                    )
                    if result.fun < best_value:
                        best_value, best_vector = float(result.fun), result.x
                self.hyperparameters = GPHyperparameters.from_vector(best_vector)
            else:
                # BaCO--: no gradient refinement, just the best prior sample.
                self.hyperparameters = GPHyperparameters.from_vector(candidates[0][1])

        k = self._kernel_matrix(self._train_distance, self.hyperparameters, noise=True)
        self._cholesky = linalg.cholesky(k, lower=True)
        self._alpha = linalg.cho_solve((self._cholesky, True), y)
        self._train_y = y
        self._chol_n = self._chol_base_n = len(rows)
        self.n_train_factorizations += 1

    @property
    def is_fitted(self) -> bool:
        return self._alpha is not None

    # ------------------------------------------------------------------
    # incremental refit
    # ------------------------------------------------------------------
    def extend_cholesky(self, rows: np.ndarray, distance_tensor: np.ndarray) -> bool:
        """Grow the cached Cholesky factor to cover ``rows`` without refactorizing.

        ``rows`` is the *full* ``(m, width)`` training matrix and
        ``distance_tensor`` the full ``(D, m, m)`` tensor (typically the views
        of an :class:`~repro.models.distances.IncrementalDistanceTensor`); the
        cached factor currently covers the first ``self._chol_n`` rows and is
        extended one row at a time:

        .. math::

            b = L^{-1} k_{1:i},\\qquad
            \\ell_{ii} = \\sqrt{k_{ii} + \\sigma_n^2 + \\epsilon - b^\\top b}

        an O(i²) triangular solve per row instead of an O(m³)
        refactorization.  Valid exactly when the hyper-parameters are
        unchanged since the factor was built.  Returns ``True`` when every
        row was added incrementally; if a pivot goes non-positive (the
        extension is numerically unsafe) the method falls back to one full
        refactorization of the whole tensor and returns ``False``.

        Invalidates ``alpha`` — call :meth:`refit_targets` afterwards.
        """
        if self._cholesky is None or self.hyperparameters is None:
            raise RuntimeError("extend_cholesky() requires a previous fit")
        rows = np.asarray(rows, dtype=float)
        distance_tensor = np.asarray(distance_tensor, dtype=float)
        m = len(rows)
        if m < self._chol_n:
            raise ValueError(
                f"got {m} rows but the cached factor already covers {self._chol_n}"
            )
        expected = (self._distance.n_dimensions, m, m)
        if distance_tensor.shape != expected:
            raise ValueError(
                f"distance tensor has shape {distance_tensor.shape}, expected {expected}"
            )
        hp = self.hyperparameters
        diag = hp.outputscale + (hp.noise_variance + _JITTER)
        L = self._cholesky
        extended = True
        for i in range(self._chol_n, m):
            k_vec = self._kernel(distance_tensor[:, i, :i], hp.lengthscales, hp.outputscale)
            b = linalg.solve_triangular(L, k_vec, lower=True)
            pivot = diag - float(b @ b)
            if pivot <= 0.0:
                extended = False
                break
            grown = np.zeros((i + 1, i + 1))
            grown[:i, :i] = L
            grown[i, :i] = b
            grown[i, i] = math.sqrt(pivot)
            L = grown
        if extended:
            self._cholesky = L
            self._chol_n = m
        else:
            k = self._kernel_matrix(distance_tensor, hp, noise=True)
            self._cholesky = linalg.cholesky(k, lower=True)
            self._chol_n = self._chol_base_n = m
            self.n_train_factorizations += 1
        self._train_rows = rows
        self._train_distance = distance_tensor
        self._alpha = None
        self._train_y = None
        return extended

    def refit_targets(self, targets: Sequence[float]) -> None:
        """Recompute the target transform and ``alpha`` against the cached factor.

        The kernel matrix is independent of the targets, so after
        :meth:`extend_cholesky` this completes an incremental refit in O(n²)
        — no kernel evaluation, no factorization.
        """
        if self._cholesky is None:
            raise RuntimeError("refit_targets() requires a previous fit")
        targets = np.asarray(targets, dtype=float)
        if len(targets) != self._chol_n:
            raise ValueError(
                f"got {len(targets)} targets for a factor covering {self._chol_n} rows"
            )
        y = self._transform_targets(targets)
        self._train_y = y
        self._alpha = linalg.cho_solve((self._cholesky, True), y)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        configurations: Sequence[Mapping[str, Any]],
        include_noise: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predictive mean and variance on the *model* scale.

        Thin adapter over :meth:`predict_rows` for configuration dicts.
        """
        return self.predict_rows(
            self.encoder.encode_batch(configurations), include_noise=include_noise
        )

    def predict_rows(
        self,
        rows: np.ndarray,
        include_noise: bool = False,
        cross_distance: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predictive mean and variance for pre-encoded rows (model scale).

        One vectorized cross-distance + kernel evaluation for the whole
        batch.  ``include_noise=False`` returns the latent (noise-free)
        predictive variance used by BaCO's modified EI, which discourages
        re-sampling already-observed configurations.

        ``cross_distance`` — when the caller maintains the test-train cross
        tensor incrementally (see
        :class:`~repro.models.distances.CrossDistanceTensor`), passing the
        ``(D, len(rows), n_train)`` tensor here turns the predict into a pure
        kernel-apply: no distance computation at all.  It must be the cross
        tensor of ``rows`` against the fitted training rows.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        hp = self.hyperparameters
        if cross_distance is not None:
            cross = np.asarray(cross_distance, dtype=float)
            expected = (self._distance.n_dimensions, len(rows), len(self._train_rows))
            if cross.shape != expected:
                raise ValueError(
                    f"cross-distance tensor has shape {cross.shape}, expected {expected}"
                )
        else:
            cross = self._distance.pairwise_rows(
                np.asarray(rows, dtype=float), self._train_rows
            )
        k_star = self._kernel(cross, hp.lengthscales, hp.outputscale)
        mean = k_star @ self._alpha
        v = linalg.solve_triangular(self._cholesky, k_star.T, lower=True)
        prior_var = hp.outputscale
        var = prior_var - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        if include_noise:
            var = var + hp.noise_variance
        return mean, var

    def predict_raw(
        self, configurations: Sequence[Mapping[str, Any]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predictive mean on the raw objective scale (approximate for log models)."""
        mean, var = self.predict(configurations)
        raw_mean = self.from_model_scale(mean)
        raw_std = np.abs(raw_mean) * np.sqrt(var) * self._y_std if self.log_transform_output else np.sqrt(var) * self._y_std
        return raw_mean, raw_std**2

    def log_likelihood(self) -> float:
        """Log posterior density of the fitted model (for diagnostics).

        Pure readback of the cached ``_cholesky`` / ``_alpha`` / targets —
        no kernel rebuild and no refactorization.  (The pre-fix
        implementation reconstructed the targets as ``alpha @ K`` and then
        refactorized the full train matrix on every call.)
        """
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        y = self._train_y
        ll = -0.5 * float(y @ self._alpha)
        ll -= float(np.sum(np.log(np.diag(self._cholesky))))
        ll -= 0.5 * len(y) * math.log(2.0 * math.pi)
        ll += self._log_prior(self.hyperparameters)
        return ll

    def log_marginal_likelihood(self) -> float:
        """Backwards-compatible alias for :meth:`log_likelihood`."""
        return self.log_likelihood()
