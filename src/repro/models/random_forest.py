"""Random forests written from scratch on numpy.

Two uses inside the reproduction:

* :class:`RandomForestClassifier` is BaCO's *feasibility model* for hidden
  constraints (Sec. 4.2): it predicts the probability that a configuration
  satisfies constraints that are only discovered by running the compiler.
* :class:`RandomForestRegressor` serves as the alternative surrogate model in
  the GP-vs-RF comparison (Fig. 8) and as the surrogate of the Ytopt-like
  baseline.

Both are built on a shared CART-style :class:`DecisionTree` with bootstrap
sampling and per-split feature subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DecisionTree", "RandomForestRegressor", "RandomForestClassifier"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0
    n_samples: int = 0

    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTree:
    """A CART regression tree (classification uses 0/1 targets).

    Splits minimize the weighted variance (MSE criterion); for binary
    classification targets this is equivalent to the Gini impurity up to a
    constant factor, so a single implementation serves both forests.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: str | int | None = "sqrt",
        rng: np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._root: _Node | None = None
        self.n_features_: int | None = None

    # -- fitting --------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if len(features) != len(targets):
            raise ValueError("features and targets must have the same length")
        if len(features) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_features_ = features.shape[1]
        self._root = self._grow(features, targets, depth=0)
        return self

    def _n_split_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, self.n_features_))
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(np.mean(targets)), n_samples=len(targets))
        if (
            depth >= self.max_depth
            or len(targets) < self.min_samples_split
            or np.all(targets == targets[0])
        ):
            return node
        best = self._best_split(features, targets)
        if best is None:
            return node
        feature, threshold, left_mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[left_mask], targets[left_mask], depth + 1)
        node.right = self._grow(features[~left_mask], targets[~left_mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        n_samples = len(targets)
        candidates = self._rng.choice(
            self.n_features_, size=self._n_split_features(), replace=False
        )
        parent_score = np.var(targets) * n_samples
        best_gain = 1e-12
        best: tuple[int, float, np.ndarray] | None = None
        for feature in candidates:
            column = features[:, feature]
            unique = np.unique(column)
            if len(unique) < 2:
                continue
            thresholds = (unique[:-1] + unique[1:]) / 2.0
            if len(thresholds) > 32:
                thresholds = np.quantile(column, np.linspace(0.05, 0.95, 32))
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                score = np.var(targets[left_mask]) * n_left + np.var(targets[~left_mask]) * n_right
                gain = parent_score - score
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask)
        return best

    # -- prediction -----------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Vectorized batch prediction.

        Rather than walking the tree once per row, the whole batch is routed
        down the tree with boolean masks: each split partitions the index set
        of rows that reached it.  The cost is O(depth) numpy operations per
        *node on the taken paths* instead of O(depth) Python steps per *row*,
        which is what makes 1000-candidate feasibility scoring cheap.
        """
        if self._root is None:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=float)
        out = np.empty(len(features))
        stack: list[tuple[_Node, np.ndarray]] = [(self._root, np.arange(len(features)))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf():
                out[idx] = node.value
                continue
            goes_left = features[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[goes_left]))
            stack.append((node.right, idx[~goes_left]))
        return out

    def _predict_one(self, row: np.ndarray) -> float:
        """Reference scalar traversal (kept for the hot-path microbenchmark)."""
        node = self._root
        while not node.is_leaf():
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        def rec(node: _Node | None) -> int:
            if node is None or node.is_leaf():
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(self._root)


class _BaseForest:
    def __init__(
        self,
        n_trees: int = 32,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: str | int | None = "sqrt",
        bootstrap: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("a forest needs at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.trees_: list[DecisionTree] = []

    def fit(self, features: np.ndarray, targets: np.ndarray):
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if len(features) == 0:
            raise ValueError("cannot fit a forest on zero samples")
        n = len(features)
        self.trees_ = []
        for _ in range(self.n_trees):
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=np.random.default_rng(self._rng.integers(2**32)),
            )
            if self.bootstrap and n > 1:
                idx = self._rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree.fit(features[idx], targets[idx])
            self.trees_.append(tree)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees_)

    def _tree_predictions(self, features: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=float)
        return np.vstack([tree.predict(features) for tree in self.trees_])


class RandomForestRegressor(_BaseForest):
    """Bagged regression forest with empirical mean / variance predictions."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._tree_predictions(features).mean(axis=0)

    def predict_with_uncertainty(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean and across-tree variance, used as a surrogate's uncertainty."""
        predictions = self._tree_predictions(features)
        return predictions.mean(axis=0), predictions.var(axis=0) + 1e-12


class RandomForestClassifier(_BaseForest):
    """Binary classifier returning calibrated-ish probabilities.

    Targets must be 0/1; the predicted probability of class 1 is the mean of
    the per-tree leaf frequencies, which is what BaCO multiplies into its
    acquisition function as the probability of feasibility.
    """

    def fit(self, features: np.ndarray, targets: np.ndarray):
        targets = np.asarray(targets, dtype=float)
        if not np.all(np.isin(targets, (0.0, 1.0))):
            raise ValueError("classification targets must be 0 or 1")
        return super().fit(features, targets)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return np.clip(self._tree_predictions(features).mean(axis=0), 0.0, 1.0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(int)
