"""Per-parameter distance computations feeding the GP kernel.

The BaCO kernel (Eq. 1-2) combines one distance measure per parameter into a
single weighted Euclidean norm.  This module computes, for a batch of
configurations, the *per-dimension distance matrices* ``d_k(x_i, x_j)`` so the
kernel can scale each dimension by its learned lengthscale.

Distances are normalized by each parameter's maximum attainable distance so
that a single set of lengthscale priors works across parameters of very
different scales (Sec. 3.2: "By normalizing the input data, BaCO can use a
single set of priors that works well for the majority of parameters").

The primary entry point is :meth:`DistanceComputer.pairwise_rows`, which
operates on **pre-encoded** matrices produced by
:class:`repro.space.encoding.ConfigEncoder`: every per-type block — numeric
absolute differences, categorical Hamming, and all four permutation
semimetrics including Kendall — is computed with vectorized numpy, with no
per-pair Python loop anywhere.  :meth:`DistanceComputer.pairwise` remains as
a thin adapter for callers holding raw configuration dicts (it encodes, then
delegates), and :meth:`DistanceComputer.pairwise_reference` preserves the
historical per-pair implementation as the ground truth for regression tests
and the hot-path microbenchmark.

:class:`IncrementalDistanceTensor` grows the symmetric train-train tensor one
observation at a time: appending a row computes only the new cross block, so
the per-iteration cost of extending the GP's Gram inputs is O(n·D) instead of
O(n²·D).  Block assembly is bit-identical to a full recompute.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..space.encoding import ColumnBlock, ConfigEncoder
from ..space.parameters import (
    CategoricalParameter,
    NumericParameter,
    Parameter,
    PermutationParameter,
)

__all__ = [
    "parameter_scale",
    "DistanceComputer",
    "IncrementalDistanceTensor",
    "kendall_pairwise_rows",
]


def parameter_scale(parameter: Parameter) -> float:
    """Maximum attainable distance for a parameter (used for normalization).

    For permutation parameters the scale applies to the *Hilbertian square
    root* of the semimetric (see :func:`_permutation_block_rows`), hence the
    square root of the maximum semimetric value.
    """
    if isinstance(parameter, PermutationParameter):
        return max(np.sqrt(parameter.max_distance()), 1.0)
    if isinstance(parameter, CategoricalParameter):
        return 1.0
    if isinstance(parameter, NumericParameter):
        if hasattr(parameter, "values"):
            values = parameter.values
            lo, hi = values[0], values[-1]
        else:
            lo, hi = parameter.low, parameter.high
        span = abs(parameter._warp(hi) - parameter._warp(lo))
        return span if span > 0 else 1.0
    raise TypeError(f"unsupported parameter type {type(parameter).__name__}")


# ---------------------------------------------------------------------------
# vectorized per-type blocks over encoded rows
# ---------------------------------------------------------------------------

def kendall_pairwise_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Kendall (discordant-pair) distances between two permutation
    matrices of shape ``(n_a, m)`` and ``(n_b, m)``.

    Each permutation is expanded into its binary pairwise-order code over the
    ``m·(m-1)/2`` index pairs ``p < q`` (1 where ``x[p] < x[q]``); the number
    of discordant pairs between two permutations is then the Hamming distance
    between their codes, computed for all pairs at once as
    ``A·(1-B)ᵀ + (1-A)·Bᵀ``.  All arithmetic is on exact small integers, so
    the result matches the per-pair double loop bit for bit.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    m = a.shape[1]
    if m < 2:
        return np.zeros((a.shape[0], b.shape[0]))
    p_idx, q_idx = np.triu_indices(m, k=1)
    codes_a = (a[:, p_idx] < a[:, q_idx]).astype(float)
    codes_b = (b[:, p_idx] < b[:, q_idx]).astype(float)
    return codes_a @ (1.0 - codes_b).T + (1.0 - codes_a) @ codes_b.T


def _numeric_block_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a[:, None] - b[None, :])


def _categorical_block_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a[:, None] != b[None, :]).astype(float)


def _permutation_block_rows(
    param: PermutationParameter, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Kernel distances for permutations: the square root of the semimetric.

    The permutation semimetrics (Kendall, Spearman, Hamming) are conditionally
    negative definite but not Euclidean; following Lomelí et al. their square
    root is Hilbertian, so combining it inside the weighted Euclidean norm of
    Eq. (2) keeps the Matérn kernel a valid (positive semi-definite)
    covariance.  The user-facing :meth:`PermutationParameter.distance` keeps
    the paper's raw semimetric values.
    """
    return np.sqrt(_raw_permutation_block_rows(param, a, b))


def _raw_permutation_block_rows(
    param: PermutationParameter, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    a = np.ascontiguousarray(a, dtype=float)
    b = np.ascontiguousarray(b, dtype=float)
    if param.metric == "spearman":
        sq_a = np.sum(a**2, axis=1)[:, None]
        sq_b = np.sum(b**2, axis=1)[None, :]
        d = sq_a + sq_b - 2.0 * (a @ b.T)
        return np.maximum(d, 0.0)
    if param.metric == "hamming":
        total = np.zeros((len(a), len(b)))
        for k in range(param.n_elements):
            total += (a[:, k][:, None] != b[:, k][None, :]).astype(float)
        return total
    if param.metric == "naive":
        equal = np.ones((len(a), len(b)), dtype=bool)
        for k in range(param.n_elements):
            equal &= a[:, k][:, None] == b[:, k][None, :]
        return (~equal).astype(float)
    return kendall_pairwise_rows(a, b)


class DistanceComputer:
    """Computes normalized per-dimension distance tensors between configurations.

    Built around a :class:`ConfigEncoder`: the fast path
    (:meth:`pairwise_rows`) consumes encoded matrices directly; the dict path
    (:meth:`pairwise`) is a thin adapter that encodes first.
    """

    def __init__(
        self, parameters: Sequence[Parameter], encoder: ConfigEncoder | None = None
    ) -> None:
        self.parameters = list(parameters)
        self.encoder = encoder if encoder is not None else ConfigEncoder(self.parameters)
        self.scales = np.array([parameter_scale(p) for p in self.parameters])

    @property
    def n_dimensions(self) -> int:
        return len(self.parameters)

    # ------------------------------------------------------------------
    # fast path: encoded rows
    # ------------------------------------------------------------------
    def pairwise_rows(
        self, rows_a: np.ndarray, rows_b: np.ndarray | None = None
    ) -> np.ndarray:
        """Distance tensor ``(D, n_a, n_b)`` from pre-encoded row matrices.

        When ``rows_b`` is ``None`` the (symmetric) self-distance tensor of
        ``rows_a`` is computed.
        """
        a = np.asarray(rows_a, dtype=float)
        b = a if rows_b is None else np.asarray(rows_b, dtype=float)
        out = np.empty((self.n_dimensions, a.shape[0], b.shape[0]))
        for k, block in enumerate(self.encoder.blocks):
            if block.kind == "numeric":
                matrix = _numeric_block_rows(a[:, block.start], b[:, block.start])
            elif block.kind == "categorical":
                matrix = _categorical_block_rows(a[:, block.start], b[:, block.start])
            else:
                matrix = _permutation_block_rows(
                    block.parameter, a[:, block.columns], b[:, block.columns]
                )
            out[k] = matrix / self.scales[k]
        return out

    # ------------------------------------------------------------------
    # dict path (thin adapter)
    # ------------------------------------------------------------------
    def pairwise(
        self,
        configs_a: Sequence[Mapping[str, Any]],
        configs_b: Sequence[Mapping[str, Any]] | None = None,
    ) -> np.ndarray:
        """Distance tensor ``(D, len(a), len(b))`` from configuration dicts."""
        rows_a = self.encoder.encode_batch(configs_a)
        rows_b = None if configs_b is None else self.encoder.encode_batch(configs_b)
        return self.pairwise_rows(rows_a, rows_b)

    # ------------------------------------------------------------------
    # reference path (pre-vectorization semantics, kept for tests / benchmarks)
    # ------------------------------------------------------------------
    def pairwise_reference(
        self,
        configs_a: Sequence[Mapping[str, Any]],
        configs_b: Sequence[Mapping[str, Any]] | None = None,
    ) -> np.ndarray:
        """The historical implementation: per-call feature re-derivation from
        raw dicts and a per-pair Python double loop for the Kendall
        semimetric.  Kept as the ground truth that
        ``tests/test_hotpath_equivalence.py`` pins :meth:`pairwise_rows`
        against, and as the "legacy" side of the hot-path microbenchmark.
        Do not use in production code paths.
        """
        b = configs_a if configs_b is None else configs_b
        out = np.zeros((self.n_dimensions, len(configs_a), len(b)))
        for k, param in enumerate(self.parameters):
            values_a = [cfg[param.name] for cfg in configs_a]
            values_b = values_a if configs_b is None else [cfg[param.name] for cfg in b]
            if isinstance(param, PermutationParameter):
                tuples_a = [param.canonical(v) for v in values_a]
                tuples_b = [param.canonical(v) for v in values_b]
                raw = np.empty((len(tuples_a), len(tuples_b)))
                for i, pa in enumerate(tuples_a):
                    for j, pb in enumerate(tuples_b):
                        raw[i, j] = param.distance(pa, pb)
                matrix = np.sqrt(raw)
            elif isinstance(param, CategoricalParameter):
                idx_a = np.array([param.index_of(v) for v in values_a])
                idx_b = np.array([param.index_of(v) for v in values_b])
                matrix = (idx_a[:, None] != idx_b[None, :]).astype(float)
            elif isinstance(param, NumericParameter):
                warped_a = np.array([param._warp(v) for v in values_a], dtype=float)
                warped_b = np.array([param._warp(v) for v in values_b], dtype=float)
                matrix = np.abs(warped_a[:, None] - warped_b[None, :])
            else:  # pragma: no cover - defensive fallback
                matrix = np.array(
                    [[param.distance(va, vb) for vb in values_b] for va in values_a],
                    dtype=float,
                )
            out[k] = matrix / self.scales[k]
        return out


class IncrementalDistanceTensor:
    """Grows a symmetric train-train distance tensor one batch at a time.

    The tuner appends each new observation's encoded row as it is evaluated;
    only the cross block against the existing rows is computed, never the
    full tensor.  Buffers grow by capacity doubling, so views handed out by
    :attr:`tensor` / :attr:`rows` stay valid snapshots even after later
    appends trigger a reallocation.
    """

    def __init__(self, computer: DistanceComputer) -> None:
        self._computer = computer
        self._n = 0
        self._rows_buf: np.ndarray | None = None
        self._tensor_buf: np.ndarray | None = None

    def __len__(self) -> int:
        return self._n

    @property
    def rows(self) -> np.ndarray:
        """Encoded rows appended so far, shape ``(n, width)`` (read-only view)."""
        if self._rows_buf is None:
            return np.empty((0, self._computer.encoder.width))
        view = self._rows_buf[: self._n]
        view.flags.writeable = False
        return view

    @property
    def tensor(self) -> np.ndarray:
        """Distance tensor over the appended rows, shape ``(D, n, n)`` (read-only view)."""
        if self._tensor_buf is None:
            return np.empty((self._computer.n_dimensions, 0, 0))
        view = self._tensor_buf[:, : self._n, : self._n]
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        self._n = 0
        self._rows_buf = None
        self._tensor_buf = None

    def _ensure_capacity(self, needed: int) -> None:
        width = self._computer.encoder.width
        depth = self._computer.n_dimensions
        capacity = 0 if self._rows_buf is None else self._rows_buf.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, max(8, 2 * capacity))
        rows = np.empty((new_capacity, width))
        tensor = np.empty((depth, new_capacity, new_capacity))
        if self._n:
            rows[: self._n] = self._rows_buf[: self._n]
            tensor[:, : self._n, : self._n] = self._tensor_buf[:, : self._n, : self._n]
        self._rows_buf = rows
        self._tensor_buf = tensor

    def append(self, new_rows: np.ndarray) -> None:
        """Append encoded rows, extending the tensor by their cross blocks."""
        new_rows = np.atleast_2d(np.asarray(new_rows, dtype=float))
        k = new_rows.shape[0]
        if k == 0:
            return
        n = self._n
        self._ensure_capacity(n + k)
        self._rows_buf[n : n + k] = new_rows
        if n:
            cross = self._computer.pairwise_rows(new_rows, self._rows_buf[:n])
            self._tensor_buf[:, n : n + k, :n] = cross
            self._tensor_buf[:, :n, n : n + k] = np.swapaxes(cross, 1, 2)
        self._tensor_buf[:, n : n + k, n : n + k] = self._computer.pairwise_rows(new_rows)
        self._n = n + k
