"""Per-parameter distance computations feeding the GP kernel.

The BaCO kernel (Eq. 1-2) combines one distance measure per parameter into a
single weighted Euclidean norm.  This module computes, for a list of
configurations, the *per-dimension distance matrices* ``d_k(x_i, x_j)`` so the
kernel can scale each dimension by its learned lengthscale.

Distances are normalized by each parameter's maximum attainable distance so
that a single set of lengthscale priors works across parameters of very
different scales (Sec. 3.2: "By normalizing the input data, BaCO can use a
single set of priors that works well for the majority of parameters").

Numeric, categorical, and (Spearman / Hamming / naive) permutation distances
are fully vectorized; the Kendall semimetric falls back to a pairwise loop
since it has no simple closed matrix form.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..space.parameters import (
    CategoricalParameter,
    NumericParameter,
    Parameter,
    PermutationParameter,
)

__all__ = ["parameter_scale", "DistanceComputer"]


def parameter_scale(parameter: Parameter) -> float:
    """Maximum attainable distance for a parameter (used for normalization).

    For permutation parameters the scale applies to the *Hilbertian square
    root* of the semimetric (see :func:`_permutation_matrix`), hence the
    square root of the maximum semimetric value.
    """
    if isinstance(parameter, PermutationParameter):
        return max(np.sqrt(parameter.max_distance()), 1.0)
    if isinstance(parameter, CategoricalParameter):
        return 1.0
    if isinstance(parameter, NumericParameter):
        if hasattr(parameter, "values"):
            values = parameter.values
            lo, hi = values[0], values[-1]
        else:
            lo, hi = parameter.low, parameter.high
        span = abs(parameter._warp(hi) - parameter._warp(lo))
        return span if span > 0 else 1.0
    raise TypeError(f"unsupported parameter type {type(parameter).__name__}")


def _numeric_matrix(param: NumericParameter, values_a, values_b) -> np.ndarray:
    a = np.array([param._warp(v) for v in values_a], dtype=float)
    b = np.array([param._warp(v) for v in values_b], dtype=float)
    return np.abs(a[:, None] - b[None, :])


def _categorical_matrix(param: CategoricalParameter, values_a, values_b) -> np.ndarray:
    a = np.array([param.index_of(v) for v in values_a])
    b = np.array([param.index_of(v) for v in values_b])
    return (a[:, None] != b[None, :]).astype(float)


def _permutation_matrix(param: PermutationParameter, values_a, values_b) -> np.ndarray:
    """Kernel distances for permutations: the square root of the semimetric.

    The permutation semimetrics (Kendall, Spearman, Hamming) are conditionally
    negative definite but not Euclidean; following Lomelí et al. their square
    root is Hilbertian, so combining it inside the weighted Euclidean norm of
    Eq. (2) keeps the Matérn kernel a valid (positive semi-definite)
    covariance.  The user-facing :meth:`PermutationParameter.distance` keeps
    the paper's raw semimetric values.
    """
    raw = _raw_permutation_matrix(param, values_a, values_b)
    return np.sqrt(raw)


def _raw_permutation_matrix(param: PermutationParameter, values_a, values_b) -> np.ndarray:
    a = np.array([param.canonical(v) for v in values_a], dtype=float)
    b = np.array([param.canonical(v) for v in values_b], dtype=float)
    if param.metric == "spearman":
        sq_a = np.sum(a**2, axis=1)[:, None]
        sq_b = np.sum(b**2, axis=1)[None, :]
        d = sq_a + sq_b - 2.0 * (a @ b.T)
        return np.maximum(d, 0.0)
    if param.metric == "hamming":
        total = np.zeros((len(a), len(b)))
        for k in range(param.n_elements):
            total += (a[:, k][:, None] != b[:, k][None, :]).astype(float)
        return total
    if param.metric == "naive":
        equal = np.ones((len(a), len(b)), dtype=bool)
        for k in range(param.n_elements):
            equal &= a[:, k][:, None] == b[:, k][None, :]
        return (~equal).astype(float)
    # Kendall: no simple vectorized form; loop over pairs.
    out = np.empty((len(a), len(b)))
    tuples_a = [param.canonical(v) for v in values_a]
    tuples_b = [param.canonical(v) for v in values_b]
    for i, pa in enumerate(tuples_a):
        for j, pb in enumerate(tuples_b):
            out[i, j] = param.distance(pa, pb)
    return out


class DistanceComputer:
    """Computes normalized per-dimension distance tensors between configurations."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters = list(parameters)
        self.scales = np.array([parameter_scale(p) for p in self.parameters])

    @property
    def n_dimensions(self) -> int:
        return len(self.parameters)

    def pairwise(
        self,
        configs_a: Sequence[Mapping[str, Any]],
        configs_b: Sequence[Mapping[str, Any]] | None = None,
    ) -> np.ndarray:
        """Return the distance tensor with shape ``(D, len(a), len(b))``.

        When ``configs_b`` is ``None`` the (symmetric) self-distance tensor of
        ``configs_a`` is computed.
        """
        b = configs_a if configs_b is None else configs_b
        n_a, n_b = len(configs_a), len(b)
        out = np.zeros((self.n_dimensions, n_a, n_b))
        for k, param in enumerate(self.parameters):
            values_a = [cfg[param.name] for cfg in configs_a]
            values_b = values_a if configs_b is None else [cfg[param.name] for cfg in b]
            if isinstance(param, PermutationParameter):
                matrix = _permutation_matrix(param, values_a, values_b)
            elif isinstance(param, CategoricalParameter):
                matrix = _categorical_matrix(param, values_a, values_b)
            elif isinstance(param, NumericParameter):
                matrix = _numeric_matrix(param, values_a, values_b)
            else:  # pragma: no cover - defensive fallback
                matrix = np.array(
                    [[param.distance(va, vb) for vb in values_b] for va in values_a],
                    dtype=float,
                )
            out[k] = matrix / self.scales[k]
        return out
