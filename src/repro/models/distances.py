"""Per-parameter distance computations feeding the GP kernel.

The BaCO kernel (Eq. 1-2) combines one distance measure per parameter into a
single weighted Euclidean norm.  This module computes, for a batch of
configurations, the *per-dimension distance matrices* ``d_k(x_i, x_j)`` so the
kernel can scale each dimension by its learned lengthscale.

Distances are normalized by each parameter's maximum attainable distance so
that a single set of lengthscale priors works across parameters of very
different scales (Sec. 3.2: "By normalizing the input data, BaCO can use a
single set of priors that works well for the majority of parameters").

The primary entry point is :meth:`DistanceComputer.pairwise_rows`, which
operates on **pre-encoded** matrices produced by
:class:`repro.space.encoding.ConfigEncoder`: every per-type block — numeric
absolute differences, categorical Hamming, and all four permutation
semimetrics including Kendall — is computed with vectorized numpy, with no
per-pair Python loop anywhere.  :meth:`DistanceComputer.pairwise` remains as
a thin adapter for callers holding raw configuration dicts (it encodes, then
delegates), and :meth:`DistanceComputer.pairwise_reference` preserves the
historical per-pair implementation as the ground truth for regression tests
and the hot-path microbenchmark.

:class:`IncrementalDistanceTensor` grows the symmetric train-train tensor one
observation at a time: appending a row computes only the new cross block, so
the per-iteration cost of extending the GP's Gram inputs is O(n·D) instead of
O(n²·D).  Block assembly is bit-identical to a full recompute.

:class:`CrossDistanceTensor` mirrors that on the candidate side: it caches the
``(D, P, n)`` cross tensor between a persistent candidate pool (``P`` rows)
and the growing training set (``n`` rows).  Each new observation appends one
column block (O(P·D)); replacing individual pooled candidates recomputes only
their rows (O(k·n·D)).  Because every per-type block is computed per
(candidate, train) pair independently — elementwise differences, Hamming
indicators, and matmul inner products whose summation never crosses pairs —
block assembly is again bit-identical to a full
:meth:`DistanceComputer.pairwise_rows` recompute.
"""
# repro: hot-path — row-space module: per-row Python loops, .tolist(), and in-loop decode are flagged (see repro.analysis)

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..space.encoding import ColumnBlock, ConfigEncoder
from ..space.parameters import (
    CategoricalParameter,
    NumericParameter,
    Parameter,
    PermutationParameter,
)

__all__ = [
    "parameter_scale",
    "DistanceComputer",
    "IncrementalDistanceTensor",
    "CrossDistanceTensor",
    "kendall_pairwise_rows",
]


def parameter_scale(parameter: Parameter) -> float:
    """Maximum attainable distance for a parameter (used for normalization).

    For permutation parameters the scale applies to the *Hilbertian square
    root* of the semimetric (see :func:`_permutation_block_rows`), hence the
    square root of the maximum semimetric value.
    """
    if isinstance(parameter, PermutationParameter):
        return max(np.sqrt(parameter.max_distance()), 1.0)
    if isinstance(parameter, CategoricalParameter):
        return 1.0
    if isinstance(parameter, NumericParameter):
        if hasattr(parameter, "values"):
            values = parameter.values
            lo, hi = values[0], values[-1]
        else:
            lo, hi = parameter.low, parameter.high
        span = abs(parameter._warp(hi) - parameter._warp(lo))
        return span if span > 0 else 1.0
    raise TypeError(f"unsupported parameter type {type(parameter).__name__}")


# ---------------------------------------------------------------------------
# vectorized per-type blocks over encoded rows
# ---------------------------------------------------------------------------

def kendall_pairwise_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Kendall (discordant-pair) distances between two permutation
    matrices of shape ``(n_a, m)`` and ``(n_b, m)``.

    Each permutation is expanded into its binary pairwise-order code over the
    ``m·(m-1)/2`` index pairs ``p < q`` (1 where ``x[p] < x[q]``); the number
    of discordant pairs between two permutations is then the Hamming distance
    between their codes, computed for all pairs at once as
    ``A·(1-B)ᵀ + (1-A)·Bᵀ``.  All arithmetic is on exact small integers, so
    the result matches the per-pair double loop bit for bit.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    m = a.shape[1]
    if m < 2:
        return np.zeros((a.shape[0], b.shape[0]))
    p_idx, q_idx = np.triu_indices(m, k=1)
    codes_a = (a[:, p_idx] < a[:, q_idx]).astype(float)
    codes_b = (b[:, p_idx] < b[:, q_idx]).astype(float)
    return codes_a @ (1.0 - codes_b).T + (1.0 - codes_a) @ codes_b.T


def _numeric_block_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a[:, None] - b[None, :])


def _categorical_block_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a[:, None] != b[None, :]).astype(float)


def _permutation_block_rows(
    param: PermutationParameter, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Kernel distances for permutations: the square root of the semimetric.

    The permutation semimetrics (Kendall, Spearman, Hamming) are conditionally
    negative definite but not Euclidean; following Lomelí et al. their square
    root is Hilbertian, so combining it inside the weighted Euclidean norm of
    Eq. (2) keeps the Matérn kernel a valid (positive semi-definite)
    covariance.  The user-facing :meth:`PermutationParameter.distance` keeps
    the paper's raw semimetric values.
    """
    return np.sqrt(_raw_permutation_block_rows(param, a, b))


def _raw_permutation_block_rows(
    param: PermutationParameter, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    a = np.ascontiguousarray(a, dtype=float)
    b = np.ascontiguousarray(b, dtype=float)
    if param.metric == "spearman":
        sq_a = np.sum(a**2, axis=1)[:, None]
        sq_b = np.sum(b**2, axis=1)[None, :]
        d = sq_a + sq_b - 2.0 * (a @ b.T)
        return np.maximum(d, 0.0)
    if param.metric == "hamming":
        total = np.zeros((len(a), len(b)))
        for k in range(param.n_elements):
            total += (a[:, k][:, None] != b[:, k][None, :]).astype(float)
        return total
    if param.metric == "naive":
        equal = np.ones((len(a), len(b)), dtype=bool)
        for k in range(param.n_elements):
            equal &= a[:, k][:, None] == b[:, k][None, :]
        return (~equal).astype(float)
    return kendall_pairwise_rows(a, b)


class DistanceComputer:
    """Computes normalized per-dimension distance tensors between configurations.

    Built around a :class:`ConfigEncoder`: the fast path
    (:meth:`pairwise_rows`) consumes encoded matrices directly; the dict path
    (:meth:`pairwise`) is a thin adapter that encodes first.
    """

    def __init__(
        self, parameters: Sequence[Parameter], encoder: ConfigEncoder | None = None
    ) -> None:
        self.parameters = list(parameters)
        self.encoder = encoder if encoder is not None else ConfigEncoder(self.parameters)
        self.scales = np.array([parameter_scale(p) for p in self.parameters])

    @property
    def n_dimensions(self) -> int:
        return len(self.parameters)

    # ------------------------------------------------------------------
    # fast path: encoded rows
    # ------------------------------------------------------------------
    def pairwise_rows(
        self, rows_a: np.ndarray, rows_b: np.ndarray | None = None
    ) -> np.ndarray:
        """Distance tensor ``(D, n_a, n_b)`` from pre-encoded row matrices.

        When ``rows_b`` is ``None`` the (symmetric) self-distance tensor of
        ``rows_a`` is computed.
        """
        a = np.asarray(rows_a, dtype=float)
        b = a if rows_b is None else np.asarray(rows_b, dtype=float)
        out = np.empty((self.n_dimensions, a.shape[0], b.shape[0]))
        for k, block in enumerate(self.encoder.blocks):
            if block.kind == "numeric":
                matrix = _numeric_block_rows(a[:, block.start], b[:, block.start])
            elif block.kind == "categorical":
                matrix = _categorical_block_rows(a[:, block.start], b[:, block.start])
            else:
                matrix = _permutation_block_rows(
                    block.parameter, a[:, block.columns], b[:, block.columns]
                )
            out[k] = matrix / self.scales[k]
        return out

    # ------------------------------------------------------------------
    # dict path (thin adapter)
    # ------------------------------------------------------------------
    def pairwise(
        self,
        configs_a: Sequence[Mapping[str, Any]],
        configs_b: Sequence[Mapping[str, Any]] | None = None,
    ) -> np.ndarray:
        """Distance tensor ``(D, len(a), len(b))`` from configuration dicts."""
        rows_a = self.encoder.encode_batch(configs_a)
        rows_b = None if configs_b is None else self.encoder.encode_batch(configs_b)
        return self.pairwise_rows(rows_a, rows_b)

    # ------------------------------------------------------------------
    # reference path (pre-vectorization semantics, kept for tests / benchmarks)
    # ------------------------------------------------------------------
    def pairwise_reference(
        self,
        configs_a: Sequence[Mapping[str, Any]],
        configs_b: Sequence[Mapping[str, Any]] | None = None,
    ) -> np.ndarray:
        """The historical implementation: per-call feature re-derivation from
        raw dicts and a per-pair Python double loop for the Kendall
        semimetric.  Kept as the ground truth that
        ``tests/test_hotpath_equivalence.py`` pins :meth:`pairwise_rows`
        against, and as the "legacy" side of the hot-path microbenchmark.
        Do not use in production code paths.
        """
        b = configs_a if configs_b is None else configs_b
        out = np.zeros((self.n_dimensions, len(configs_a), len(b)))
        for k, param in enumerate(self.parameters):
            values_a = [cfg[param.name] for cfg in configs_a]
            values_b = values_a if configs_b is None else [cfg[param.name] for cfg in b]
            if isinstance(param, PermutationParameter):
                tuples_a = [param.canonical(v) for v in values_a]
                tuples_b = [param.canonical(v) for v in values_b]
                raw = np.empty((len(tuples_a), len(tuples_b)))
                for i, pa in enumerate(tuples_a):
                    for j, pb in enumerate(tuples_b):
                        raw[i, j] = param.distance(pa, pb)
                matrix = np.sqrt(raw)
            elif isinstance(param, CategoricalParameter):
                idx_a = np.array([param.index_of(v) for v in values_a])
                idx_b = np.array([param.index_of(v) for v in values_b])
                matrix = (idx_a[:, None] != idx_b[None, :]).astype(float)
            elif isinstance(param, NumericParameter):
                warped_a = np.array([param._warp(v) for v in values_a], dtype=float)
                warped_b = np.array([param._warp(v) for v in values_b], dtype=float)
                matrix = np.abs(warped_a[:, None] - warped_b[None, :])
            else:  # pragma: no cover - defensive fallback
                matrix = np.array(
                    [[param.distance(va, vb) for vb in values_b] for va in values_a],
                    dtype=float,
                )
            out[k] = matrix / self.scales[k]
        return out


class IncrementalDistanceTensor:
    """Grows a symmetric train-train distance tensor one batch at a time.

    The tuner appends each new observation's encoded row as it is evaluated;
    only the cross block against the existing rows is computed, never the
    full tensor.  Buffers grow by capacity doubling, so views handed out by
    :attr:`tensor` / :attr:`rows` stay valid snapshots even after later
    appends trigger a reallocation.
    """

    def __init__(self, computer: DistanceComputer) -> None:
        self._computer = computer
        self._n = 0
        self._rows_buf: np.ndarray | None = None
        self._tensor_buf: np.ndarray | None = None

    def __len__(self) -> int:
        return self._n

    @property
    def rows(self) -> np.ndarray:
        """Encoded rows appended so far, shape ``(n, width)`` (read-only view)."""
        if self._rows_buf is None:
            return np.empty((0, self._computer.encoder.width))
        view = self._rows_buf[: self._n]
        view.flags.writeable = False
        return view

    @property
    def tensor(self) -> np.ndarray:
        """Distance tensor over the appended rows, shape ``(D, n, n)`` (read-only view)."""
        if self._tensor_buf is None:
            return np.empty((self._computer.n_dimensions, 0, 0))
        view = self._tensor_buf[:, : self._n, : self._n]
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        self._n = 0
        self._rows_buf = None
        self._tensor_buf = None

    def _ensure_capacity(self, needed: int) -> None:
        width = self._computer.encoder.width
        depth = self._computer.n_dimensions
        capacity = 0 if self._rows_buf is None else self._rows_buf.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, max(8, 2 * capacity))
        rows = np.empty((new_capacity, width))
        tensor = np.empty((depth, new_capacity, new_capacity))
        if self._n:
            rows[: self._n] = self._rows_buf[: self._n]
            tensor[:, : self._n, : self._n] = self._tensor_buf[:, : self._n, : self._n]
        self._rows_buf = rows
        self._tensor_buf = tensor

    def append(self, new_rows: np.ndarray) -> None:
        """Append encoded rows, extending the tensor by their cross blocks."""
        new_rows = np.atleast_2d(np.asarray(new_rows, dtype=float))
        k = new_rows.shape[0]
        if k == 0:
            return
        n = self._n
        self._ensure_capacity(n + k)
        self._rows_buf[n : n + k] = new_rows
        if n:
            cross = self._computer.pairwise_rows(new_rows, self._rows_buf[:n])
            self._tensor_buf[:, n : n + k, :n] = cross
            self._tensor_buf[:, :n, n : n + k] = np.swapaxes(cross, 1, 2)
        self._tensor_buf[:, n : n + k, n : n + k] = self._computer.pairwise_rows(new_rows)
        self._n = n + k


class CrossDistanceTensor:
    """Caches candidate-pool-to-training-set cross distances incrementally.

    The acquisition hot path predicts over the same pooled candidate rows
    every iteration; rebuilding their ``(D, P, n)`` cross-distance tensor per
    predict is O(P·n·D) of redundant work.  This cache computes the tensor
    once per pool (:meth:`set_pool`), extends it by one *column* block per new
    observation (:meth:`extend_train`), and recomputes only the rows of
    replaced candidates (:meth:`refresh_pool_rows`).  The train axis grows by
    capacity doubling; :attr:`tensor` hands out read-only snapshot views.

    Invariant: ``tensor`` always equals
    ``computer.pairwise_rows(pool_rows, train_rows)`` bit for bit (see module
    docstring for why block assembly cannot drift).
    """

    def __init__(self, computer: DistanceComputer) -> None:
        self._computer = computer
        self._pool: np.ndarray | None = None
        self._train_n = 0
        self._tensor_buf: np.ndarray | None = None

    def __len__(self) -> int:
        """Number of training rows covered (the tensor's column count)."""
        return self._train_n

    @property
    def n_pool(self) -> int:
        return 0 if self._pool is None else self._pool.shape[0]

    @property
    def pool_rows(self) -> np.ndarray:
        """The pooled candidate rows, shape ``(P, width)`` (read-only view)."""
        if self._pool is None:
            return np.empty((0, self._computer.encoder.width))
        view = self._pool[:]
        view.flags.writeable = False
        return view

    @property
    def tensor(self) -> np.ndarray:
        """Cross tensor, shape ``(D, P, n_train)`` (read-only view)."""
        if self._pool is None or self._tensor_buf is None:
            return np.empty((self._computer.n_dimensions, self.n_pool, 0))
        view = self._tensor_buf[:, :, : self._train_n]
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        self._pool = None
        self._train_n = 0
        self._tensor_buf = None

    def _ensure_capacity(self, needed: int) -> None:
        capacity = 0 if self._tensor_buf is None else self._tensor_buf.shape[2]
        if needed <= capacity:
            return
        new_capacity = max(needed, max(8, 2 * capacity))
        tensor = np.empty(
            (self._computer.n_dimensions, self.n_pool, new_capacity)
        )
        if self._train_n:
            tensor[:, :, : self._train_n] = self._tensor_buf[:, :, : self._train_n]
        self._tensor_buf = tensor

    def set_pool(self, pool_rows: np.ndarray, train_rows: np.ndarray) -> None:
        """(Re)build the cache for a fresh pool against ``train_rows``."""
        self._pool = np.array(pool_rows, dtype=float, copy=True)
        train_rows = np.asarray(train_rows, dtype=float)
        self._train_n = 0
        self._tensor_buf = None
        if len(train_rows):
            self._ensure_capacity(len(train_rows))
            self._tensor_buf[:, :, : len(train_rows)] = self._computer.pairwise_rows(
                self._pool, train_rows
            )
            self._train_n = len(train_rows)

    def extend_train(self, new_train_rows: np.ndarray) -> None:
        """Append the column block for newly observed training rows."""
        if self._pool is None:
            raise RuntimeError("extend_train() before set_pool()")
        new_train_rows = np.atleast_2d(np.asarray(new_train_rows, dtype=float))
        k = new_train_rows.shape[0]
        if k == 0:
            return
        n = self._train_n
        self._ensure_capacity(n + k)
        self._tensor_buf[:, :, n : n + k] = self._computer.pairwise_rows(
            self._pool, new_train_rows
        )
        self._train_n = n + k

    def refresh_pool_rows(
        self, indices: Sequence[int], new_pool_rows: np.ndarray, train_rows: np.ndarray
    ) -> None:
        """Replace pooled candidates at ``indices`` and recompute their rows.

        ``train_rows`` must be the same ``(n_train, width)`` matrix the cached
        columns were built against (the caller's incremental train cache).
        """
        if self._pool is None:
            raise RuntimeError("refresh_pool_rows() before set_pool()")
        indices = np.asarray(indices, dtype=int)
        if len(indices) == 0:
            return
        new_pool_rows = np.atleast_2d(np.asarray(new_pool_rows, dtype=float))
        if len(new_pool_rows) != len(indices):
            raise ValueError(
                f"{len(indices)} indices but {len(new_pool_rows)} replacement rows"
            )
        train_rows = np.asarray(train_rows, dtype=float)
        if len(train_rows) != self._train_n:
            raise ValueError(
                f"cache covers {self._train_n} training rows, got {len(train_rows)}"
            )
        self._pool[indices] = new_pool_rows
        if self._train_n:
            self._tensor_buf[:, indices, : self._train_n] = (
                self._computer.pairwise_rows(new_pool_rows, train_rows)
            )
