"""Blocking client for the TCP tuning service.

:class:`TuningClient` speaks the JSON-lines protocol of
:class:`repro.service.SessionRegistry` over one TCP connection: one request
line out, one response line back, strictly in order.  A client object is
safe to share between threads (an internal lock pairs each request with its
response), but the intended pattern is one client per evaluation harness,
each bound to its own named session::

    with TuningClient(port=7730, session="gpu") as client:
        client.start(benchmark="hpvm_bfs", tuner="BaCO", budget=20, seed=0)
        history = client.drive(benchmark.evaluator)

:meth:`TuningClient.drive` mirrors :func:`repro.core.session.drive`: ask a
batch, evaluate locally, tell the results back in suggestion-id order —
which is exactly what makes a TCP-driven trace bit-identical to the same
seed driven in-process.

Errors: every transport method returns the decoded response dict;
:meth:`request` additionally raises :class:`ServiceError` when the server
answers ``ok: false``, carrying the full response in ``.response``.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from typing import Any, Callable, Mapping

from .core.result import ObjectiveResult, configuration_from_json
from .service import _reject_constant, wire_decode

__all__ = ["ServiceError", "TuningClient"]


class ServiceError(RuntimeError):
    """The server answered ``ok: false``; the response dict is attached."""

    def __init__(self, response: Mapping[str, Any]) -> None:
        super().__init__(str(response.get("error", "request failed")))
        self.response = dict(response)


class TuningClient:
    """A line-framed blocking connection to a :class:`TuningServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7730,
        *,
        session: str | None = None,
        timeout: float | None = 60.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._broken = False
        #: default ``session`` name attached to every request (None: server default)
        self.session = session

    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request, return the decoded response (no ok-check)."""
        request: dict[str, Any] = {"op": op, **fields}
        if self.session is not None:
            request.setdefault("session", self.session)
        payload = json.dumps(request, allow_nan=False).encode("utf-8")
        with self._lock:
            if self._broken:
                raise ConnectionError(
                    "connection is desynchronized after an earlier "
                    "timeout/transport error — open a new TuningClient"
                )
            try:
                self._file.write(payload + b"\n")
                self._file.flush()
                raw = self._file.readline()
            except OSError as exc:  # includes socket.timeout
                # a request may be in flight with its response unread: any
                # further call would read the *previous* op's response, so
                # poison the connection instead of silently desyncing
                self._broken = True
                raise ConnectionError(
                    f"transport error mid-request ({exc}); the connection "
                    "can no longer pair requests with responses"
                ) from exc
        if not raw:
            raise ConnectionError("server closed the connection")
        try:
            # the server is strict (allow_nan=False), so a bare NaN/Infinity
            # token can only mean a corrupt or non-conforming peer
            response = json.loads(
                raw.decode("utf-8"), parse_constant=_reject_constant
            )
        except ValueError as exc:
            raise ConnectionError(f"malformed server response: {raw!r}") from exc
        if not isinstance(response, dict):
            raise ConnectionError(f"malformed server response: {raw!r}")
        return wire_decode(response)

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Like :meth:`call` but raises :class:`ServiceError` on ``ok: false``."""
        response = self.call(op, **fields)
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    # ------------------------------------------------------------------
    # op conveniences
    # ------------------------------------------------------------------

    def start(self, benchmark: str, budget: int, **fields: Any) -> dict[str, Any]:
        return self.request("start", benchmark=benchmark, budget=budget, **fields)

    def ask(self, n: int = 1) -> dict[str, Any]:
        return self.request("ask", n=n)

    def tell(
        self,
        suggestion_id: int,
        value: float | None = None,
        *,
        feasible: bool = True,
        elapsed: float = 0.0,
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {"id": suggestion_id, "feasible": feasible,
                                  "elapsed": elapsed}
        # non-finite floats have no strict-JSON representation, but they must
        # still reach the server: as strings float() round-trips them exactly,
        # so an infeasible -inf/nan is recorded verbatim and a feasible inf
        # draws the server's pointed non-finite-value error instead of a
        # misleading missing-value one
        if value is not None:
            fields["value"] = value if math.isfinite(value) else repr(value)
        return self.request("tell", **fields)

    def status(self) -> dict[str, Any]:
        return self.request("status")

    def snapshot(self, path: str | None = None) -> dict[str, Any]:
        return self.request("snapshot", **({} if path is None else {"path": path}))

    def restore(self, *, path: str | None = None,
                payload: Mapping[str, Any] | None = None, **fields: Any) -> dict[str, Any]:
        extra: dict[str, Any] = dict(fields)
        if path is not None:
            extra["path"] = path
        if payload is not None:
            extra["payload"] = payload
        return self.request("restore", **extra)

    def close_session(self) -> dict[str, Any]:
        return self.request("close")

    def sessions(self) -> dict[str, Any]:
        return self.request("sessions")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def drive(
        self,
        evaluator: Callable[[Mapping[str, Any]], ObjectiveResult],
        batch_size: int = 1,
    ) -> float | None:
        """Drive the bound session to completion; returns the best value.

        Asks ``batch_size`` suggestions at a time, evaluates them locally,
        and tells results back in suggestion-id order — the same contract as
        :func:`repro.core.session.drive`, so the server-side trace is
        bit-identical to an in-process run with the same batch size.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        best: float | None = None
        while True:
            asked = self.request("ask", n=batch_size)
            suggestions = asked["suggestions"]
            if not suggestions:
                if asked["done"]:
                    return best
                raise RuntimeError(
                    "server returned no suggestions but the session is not "
                    "done — another client holds in-flight suggestions"
                )
            outcomes = []
            for entry in suggestions:
                configuration = configuration_from_json(entry["configuration"])
                started = time.perf_counter()
                result = evaluator(configuration)
                outcomes.append(
                    (int(entry["id"]), result, time.perf_counter() - started)
                )
            for suggestion_id, result, elapsed in sorted(outcomes, key=lambda o: o[0]):
                told = self.tell(
                    suggestion_id,
                    result.value,
                    feasible=result.feasible,
                    elapsed=elapsed,
                )
                best = told["best_value"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TuningClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
